(** ViewCL interpreter: evaluates a program against a live {!Target},
    walking the runtime object graph and emitting a {!Vgraph} plot.

    Implements the paper's three simplification operators:
    - {b prune}: only declared Box items are extracted;
    - {b flatten}: dot-paths chase pointers across intermediate objects;
    - {b distill}: container constructors (List, RBTree, Array, XArray,
      MapleEntries) and converter methods ([Array.selectFrom]) turn linked
      structures into ordered sequences. *)

open Ast

(** Formatting configuration: bit-flag tables and emoji renderers used by
    the [flag:<id>] and [emoji:<id>] text decorators (Table 1). *)
type config = {
  flags : (string * (int * string) list) list;
  emojis : (string * (int -> string)) list;
}

let default_config = { flags = []; emojis = [] }

(** Traversal bounds for container iteration.  A corrupted kernel can
    present a circular list or a self-referential tree; extraction must
    truncate (recording a {!Target.fault.Truncated} fault, which marks
    the owning box broken) rather than hang or overflow the stack.
    [max_retries] bounds how often a box whose consistent section came
    back dirty (a writer raced the walk) is re-extracted before
    degrading to a [TORN] box. *)
type limits = { max_nodes : int; max_depth : int; max_retries : int }

let default_limits = { max_nodes = 4096; max_depth = 64; max_retries = 2 }

type value =
  | Vtgt of Target.value
  | Vbox of Vgraph.box_id
  | Vlist of value list
  | Vnull

type env = (string * value) list

(* ------------------------------------------------------------------ *)
(* The cross-run box memo (incremental re-plot).

   One entry per (definition name, address) — the same key the old
   per-run memo used, extended with everything needed to decide whether
   the box built last run is still a faithful snapshot:

   - [e_def]/[e_vhash]: the definition as built (view-hash identity —
     a redefined Box never reuses stale layouts);
   - [e_pages]: the (page, Kmem generation) stamps of the consistent
     section the box built under.  A clean section's stamps are exactly
     the pages the build read; any Kmem write bumps a page's generation,
     so comparing stamps against the live memory is a complete, lazy
     invalidation test;
   - [e_faulty]: set when the build recorded memory faults or closed
     dirty — degraded boxes are never reused, a refresh retries them.

   Within one run, [e_run = pc_run] doubles as the old memo-hit test
   (shared objects become shared boxes; cycles terminate).  Across
   runs, a valid entry is adopted — subtree and all — with zero reads;
   an invalid one is re-extracted IN PLACE under its existing box id. *)
type entry = {
  e_box : Vgraph.box_id;
  e_name : string;
  mutable e_run : int;  (* run stamp when last built or adopted *)
  mutable e_vhash : int;
  mutable e_def : boxdef;
  mutable e_pages : (int * int) list;
  mutable e_faulty : bool;
}

type plot_cache = {
  pc_graph : Vgraph.t;
  pc_entries : (string * int, entry) Hashtbl.t;
  pc_by_box : (Vgraph.box_id, entry) Hashtbl.t;
  mutable pc_run : int;
}

let create_cache () =
  { pc_graph = Vgraph.create (); pc_entries = Hashtbl.create 256;
    pc_by_box = Hashtbl.create 256; pc_run = 0 }

let cache_boxes c = Hashtbl.fold (fun id _ acc -> id :: acc) c.pc_by_box [] |> List.sort compare

let cache_pages c id =
  match Hashtbl.find_opt c.pc_by_box id with Some e -> e.e_pages | None -> []

let c_box_hits = Obs.Counter.make "cache.box_hits"
let c_box_misses = Obs.Counter.make "cache.box_misses"
let c_box_invalidated = Obs.Counter.make "cache.box_invalidated"

type state = {
  tgt : Target.t;
  cfg : config;
  graph : Vgraph.t;  (** = [cache.pc_graph] (or a {!Vgraph.fork} in a lane) *)
  defs : (string, boxdef) Hashtbl.t;
  cache : plot_cache;
  reuse_ok : bool;
      (** cross-run reuse allowed: false while Kmem fault injection is
          armed (the injection LCG draws once per performed read, so
          skipping a subtree's reads would shift every later fault) *)
  bad : (Vgraph.box_id, unit) Hashtbl.t;  (** per-run invalid verdicts *)
  limits : limits;
  pool : Dpool.t option;  (** domain pool for splitting wide For_each loops *)
  lane : int option;  (** [Some lane] inside a lane shard (no nested splits) *)
  mutable in_box : int;
      (** [build_box] nesting depth.  A nested For_each (a container
          inside a box) may still split: each lane element builds its
          boxes under the lane target's own consistent sections —
          exactly the sections a sequential build would open for those
          child boxes — so per-box tear detection is preserved.  Only
          the enclosing box's section no longer sees the loose
          (non-box) reads of the loop body; those are glue reads whose
          tears surface through the child boxes they feed. *)
  mutable split_seq : int;
      (** structural lane-id counter: each split claims the next block
          of lane ids in program order, so a lane's id — and therefore
          its chaos/injection streams — is a function of the program
          alone, never of the domain count or schedule *)
  mutable box_budget : int;
  (* cache accounting for this run *)
  mutable hits : int;  (** boxes adopted from the previous run, zero reads *)
  mutable misses : int;  (** keys never built before *)
  mutable invalidated : int;  (** stale entries re-extracted in place *)
  mutable rebuilt : Vgraph.box_id list;  (** memoized boxes built this run *)
  (* snapshot-consistency accounting for the whole run *)
  mutable torn_sections : int;  (** consistent sections that came back dirty *)
  mutable retries : int;  (** re-extraction attempts performed *)
  mutable repaired : int;  (** boxes whose retry produced a clean snapshot *)
  mutable torn_boxes : int;  (** boxes degraded to [TORN] (budget exhausted) *)
}

let truncated st ~ctx a = Target.record_fault st.tgt (Target.Truncated { at = a; ctx })

let lookup env name = List.assoc_opt name env

(* ------------------------------------------------------------------ *)
(* Bridging ViewCL values into C expressions *)

let value_to_target st = function
  | Vtgt v -> v
  | Vbox id ->
      let b = Vgraph.get st.graph id in
      let ty = if Ctype.is_defined (Target.types st.tgt) b.Vgraph.btype then
          Ctype.Ptr (Ctype.Named b.Vgraph.btype)
        else Ctype.voidp
      in
      { Target.typ = ty; loc = Target.Rval b.Vgraph.addr }
  | Vnull -> Target.null_ptr
  | Vlist _ -> fail "cannot use a container value in a C expression"

let cexpr_env st env name =
  (* Identifiers written as [@x] inside ${...} resolve through the ViewCL
     environment. *)
  if String.length name > 0 && name.[0] = '@' then
    let n = String.sub name 1 (String.length name - 1) in
    match lookup env n with
    | Some v -> Some (value_to_target st v)
    | None -> fail "unbound ViewCL reference @%s in C expression" n
  else None

let eval_cexpr st env src =
  try Vtgt (Cexpr.eval_string ~env:(cexpr_env st env) st.tgt src) with
  | Cexpr.Parse_error m -> fail "in ${%s}: parse error: %s" src m
  | Cexpr.Eval_error m -> fail "in ${%s}: %s" src m
  | Invalid_argument m -> fail "in ${%s}: %s" src m

(* ------------------------------------------------------------------ *)
(* Value coercions *)

let addr_of_value st v =
  match v with
  | Vnull -> 0
  | Vbox id -> (Vgraph.get st.graph id).Vgraph.addr
  | Vtgt tv -> (
      match tv.Target.loc with
      | Target.Lval a when not (Ctype.is_pointer tv.Target.typ) -> a
      | _ -> Target.as_int st.tgt tv)
  | Vlist _ -> fail "container value has no address"

let int_of_value st = function
  | Vnull -> 0
  | Vtgt tv -> Target.as_int st.tgt tv
  | Vbox id -> (Vgraph.get st.graph id).Vgraph.addr
  | Vlist _ -> fail "container value is not an integer"

let is_null _st = function
  | Vnull -> true
  | Vtgt tv -> (
      match tv.Target.loc with
      | Target.Rval 0 -> true
      | Target.Rval _ | Target.Lval _ -> false
      | Target.Rstr _ -> false)
  | Vbox _ -> false
  | Vlist l -> l = []

(* ------------------------------------------------------------------ *)
(* Text decorators (Table 1) *)

let rec default_format st (tv : Target.value) =
  let tgt = st.tgt in
  match tv.Target.loc with
  | Target.Rstr s -> s
  | _ -> (
      match tv.Target.typ with
      | Ctype.Named n when Ctype.is_defined (Target.types tgt) n
                           && Ctype.kind_of (Target.types tgt) n = Ctype.Enum_kind ->
          let v = Target.as_int tgt tv in
          (match Ctype.enum_name_of (Target.types tgt) n v with
          | Some name -> name
          | None -> string_of_int v)
      | Ctype.Array (Ctype.Int { ik_size = 1; _ }, _) -> Target.as_string tgt tv
      | Ctype.Bool -> if Target.as_int tgt tv <> 0 then "true" else "false"
      | Ctype.Ptr (Ctype.Func _) -> format_fptr st (Target.as_int tgt tv)
      | Ctype.Ptr _ ->
          let a = Target.as_int tgt tv in
          if a = 0 then "NULL" else Printf.sprintf "0x%x" a
      | _ -> string_of_int (Target.as_int tgt tv))

and format_fptr st a =
  if a = 0 then "NULL"
  else
    match Target.lookup_helper st.tgt "func_name" with
    | Some h -> (
        match (h st.tgt [ Target.int_value a ]).Target.loc with
        | Target.Rstr s -> s
        | _ -> Printf.sprintf "0x%x" a)
    | None -> Printf.sprintf "0x%x" a

let format_flags st table_name v =
  match List.assoc_opt table_name st.cfg.flags with
  | None -> Printf.sprintf "0x%x" v
  | Some table ->
      let names = List.filter_map (fun (bit, n) -> if v land bit <> 0 then Some n else None) table in
      if names = [] then "0" else String.concat "|" names

let format_emoji st id v =
  match List.assoc_opt id st.cfg.emojis with
  | Some f -> f v
  | None -> string_of_int v

(** Format a target value under a decorator; also returns the raw fval
    recorded for ViewQL. *)
let format_value st dec (tv : Target.value) : string * Vgraph.fval =
  let tgt = st.tgt in
  let as_i () = Target.as_int tgt tv in
  match dec with
  | None -> (
      let s = default_format st tv in
      match tv.Target.loc with
      | Target.Rstr str -> (s, Vgraph.Fstr str)
      | _ -> (
          match tv.Target.typ with
          | Ctype.Ptr _ -> (s, Vgraph.Faddr (as_i ()))
          | Ctype.Array (Ctype.Int { ik_size = 1; _ }, _) -> (s, Vgraph.Fstr s)
          | Ctype.Bool -> (s, Vgraph.Fbool (as_i () <> 0))
          | Ctype.Named _ -> (s, Vgraph.Fstr s)
          | _ -> (s, Vgraph.Fint (as_i ()))))
  | Some parts -> (
      match parts with
      | [ "string" ] ->
          let s = Target.as_string tgt tv in
          (s, Vgraph.Fstr s)
      | [ "bool" ] ->
          let b = Target.truthy tgt tv in
          ((if b then "true" else "false"), Vgraph.Fbool b)
      | [ "char" ] ->
          let c = as_i () land 0xff in
          (Printf.sprintf "%C" (Char.chr c), Vgraph.Fint c)
      | [ "raw_ptr" ] -> (Printf.sprintf "0x%x" (as_i ()), Vgraph.Faddr (as_i ()))
      | [ "fptr" ] ->
          let a = as_i () in
          (format_fptr st a, Vgraph.Faddr a)
      | [ "enum"; ty ] -> (
          let v = as_i () in
          match Ctype.enum_name_of (Target.types tgt) ty v with
          | Some n -> (n, Vgraph.Fstr n)
          | None -> (string_of_int v, Vgraph.Fint v))
      | [ "flag"; table ] ->
          let v = as_i () in
          (format_flags st table v, Vgraph.Fint v)
      | [ "emoji"; id ] ->
          let v = as_i () in
          (format_emoji st id v, Vgraph.Fint v)
      | [ ik ] | [ ik; "d" ] when String.length ik > 0 ->
          let v = as_i () in
          (string_of_int v, Vgraph.Fint v)
      | [ _; "x" ] ->
          let v = as_i () in
          (Printf.sprintf "0x%x" v, Vgraph.Fint v)
      | [ _; "o" ] ->
          let v = as_i () in
          (Printf.sprintf "0o%o" v, Vgraph.Fint v)
      | [ _; "b" ] ->
          let v = as_i () in
          let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (string_of_int (v land 1) ^ acc) in
          ((if v = 0 then "0b0" else "0b" ^ bits v ""), Vgraph.Fint v)
      | parts -> fail "unknown text decorator <%s>" (String.concat ":" parts))

(* ------------------------------------------------------------------ *)
(* Containers *)

(* Container distillation spans: one per traversal, named after the
   constructor, so the trace shows where extraction time pools. *)
let distilled name f =
  if Obs.enabled () then Obs.with_span ~cat:"viewcl" name f else f ()

(* [head_v]: lvalue of (or pointer to) a list_head; emits node addrs
   one by one as the pointer chase discovers them.  The emit-style
   shape is what lets a pooled run stream chunks to lane tasks while
   the walk is still chasing — the read sequence is identical to the
   materializing wrapper below. *)
let iter_list_emit st head_v emit =
  let tgt = st.tgt in
  let head =
    match head_v.Target.typ with
    | Ctype.Ptr _ -> Target.as_int tgt head_v
    | _ -> Target.addr_of head_v
  in
  let next a = Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "list_head") a) "next") in
  let seen = Hashtbl.create 64 in
  let rec go a n =
    if a = head || a = 0 then ()
    else if
      Hashtbl.mem seen a || n >= st.limits.max_nodes
      || Target.deadline_exceeded st.tgt
    then truncated st ~ctx:"List traversal" a
    else begin
      Hashtbl.add seen a ();
      emit (Vtgt (Target.ptr_to (Ctype.Named "list_head") a));
      go (next a) (n + 1)
    end
  in
  go (next head) 0

let iter_list st head_v =
  distilled "viewcl.distill.list" @@ fun () ->
  let acc = ref [] in
  iter_list_emit st head_v (fun v -> acc := v :: !acc);
  List.rev !acc

let iter_hlist st head_v =
  distilled "viewcl.distill.hlist" @@ fun () ->
  let tgt = st.tgt in
  let head =
    match head_v.Target.typ with
    | Ctype.Ptr _ -> Target.as_int tgt head_v
    | _ -> Target.addr_of head_v
  in
  let first = Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "hlist_head") head) "first") in
  let next a = Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "hlist_node") a) "next") in
  let seen = Hashtbl.create 64 in
  let rec go a acc n =
    if a = 0 then List.rev acc
    else if
      Hashtbl.mem seen a || n >= st.limits.max_nodes
      || Target.deadline_exceeded st.tgt
    then begin
      truncated st ~ctx:"HList traversal" a;
      List.rev acc
    end
    else begin
      Hashtbl.add seen a ();
      go (next a) (Vtgt (Target.ptr_to (Ctype.Named "hlist_node") a) :: acc) (n + 1)
    end
  in
  go first [] 0

let iter_rbtree st root_v =
  distilled "viewcl.distill.rbtree" @@ fun () ->
  (* Accepts rb_root, rb_root_cached, or pointers to either. *)
  let tgt = st.tgt in
  let v = match root_v.Target.typ with Ctype.Ptr _ -> Target.deref tgt root_v | _ -> root_v in
  let root =
    match v.Target.typ with
    | Ctype.Named "rb_root_cached" -> Target.member tgt v "rb_root"
    | _ -> v
  in
  let node a = Target.obj (Ctype.Named "rb_node") a in
  let get f a = Target.as_int tgt (Target.member tgt (node a) f) in
  let seen = Hashtbl.create 64 in
  let rec inorder a depth acc =
    if a = 0 then acc
    else if
      Hashtbl.mem seen a || depth > st.limits.max_depth
      || Target.deadline_exceeded st.tgt
    then begin
      truncated st ~ctx:"RBTree traversal" a;
      acc
    end
    else begin
      Hashtbl.add seen a ();
      inorder (get "rb_left" a) (depth + 1)
        (Vtgt (Target.ptr_to (Ctype.Named "rb_node") a) :: inorder (get "rb_right" a) (depth + 1) acc)
    end
  in
  let top = Target.as_int tgt (Target.member tgt root "rb_node") in
  inorder top 0 []

let iter_array st args =
  distilled "viewcl.distill.array" @@ fun () ->
  let tgt = st.tgt in
  match args with
  | [ arr ] -> (
      match arr with
      | Vtgt ({ Target.typ = Ctype.Array (elt, n); _ } as tv) ->
          List.init n (fun i -> Vtgt (Target.load tgt (Target.index tgt tv i)))
          |> List.map (fun v -> (v, elt))
          |> List.map fst
      | _ -> fail "Array(..) expects an array lvalue (or Array(ptr, count))")
  | [ ptr; count ] -> (
      let n = int_of_value st count in
      match ptr with
      | Vtgt tv when Ctype.is_pointer tv.Target.typ ->
          List.init n (fun i -> Vtgt (Target.load tgt (Target.index tgt tv i)))
      | _ -> fail "Array(ptr, count) expects a pointer")
  | _ -> fail "Array takes 1 or 2 arguments"

let iter_xarray st xa_v =
  distilled "viewcl.distill.xarray" @@ fun () ->
  (* Yields entry values of an xarray, in index order. *)
  let tgt = st.tgt in
  let xa = match xa_v.Target.typ with Ctype.Ptr _ -> Target.deref tgt xa_v | _ -> xa_v in
  let head = Target.as_int tgt (Target.member tgt xa "xa_head") in
  let is_node e = e land 3 = 2 && e > 4096 in
  let acc = ref [] in
  let seen = Hashtbl.create 64 in
  let rec walk e depth =
    if e <> 0 then
      if not (is_node e) then acc := Vtgt (Target.ptr_to Ctype.Void e) :: !acc
      else begin
        let na = e land lnot 3 in
        if
          Hashtbl.mem seen na || depth > st.limits.max_depth
          || Target.deadline_exceeded st.tgt
        then truncated st ~ctx:"XArray traversal" na
        else begin
          Hashtbl.add seen na ();
          let n = Target.obj (Ctype.Named "xa_node") na in
          let shift = Target.as_int tgt (Target.member tgt n "shift") in
          let slots = Target.member tgt n "slots" in
          for i = 0 to 63 do
            let child = Target.as_int tgt (Target.load tgt (Target.index tgt slots i)) in
            if child <> 0 then
              if shift = 0 then acc := Vtgt (Target.ptr_to Ctype.Void child) :: !acc
              else walk child (depth + 1)
          done
        end
      end
  in
  walk head 0;
  List.rev !acc

let iter_maple st mt_v =
  distilled "viewcl.distill.maple" @@ fun () ->
  (* Yields the non-NULL leaf entries of a maple tree, in range order:
     reads pivots and slots from the real nodes via the target. *)
  let tgt = st.tgt in
  let mt = match mt_v.Target.typ with Ctype.Ptr _ -> Target.deref tgt mt_v | _ -> mt_v in
  let root = Target.as_int tgt (Target.member tgt mt "ma_root") in
  let mt_max = (1 lsl 56) - 1 in
  let is_node e = e land 2 <> 0 && e > 4096 in
  let to_node e = e land lnot 0xff in
  let node_type e = (e lsr 3) land 0xf in
  let acc = ref [] in
  let seen = Hashtbl.create 64 in
  let rec descend enc node_min node_max depth =
    let na = to_node enc in
    if
      Hashtbl.mem seen na || depth > st.limits.max_depth
      || Target.deadline_exceeded st.tgt
    then truncated st ~ctx:"MapleEntries traversal" na
    else begin
      Hashtbl.add seen na ();
      let leaf = node_type enc = 1 in
      let node = Target.obj (Ctype.Named "maple_node") na in
      let sub = Target.member tgt node (if leaf then "mr64" else "ma64") in
      let pivots = Target.member tgt sub "pivot" in
      let slots = Target.member tgt sub "slot" in
      let nslots = if leaf then 16 else 10 in
      let rec go i lo =
        if i < nslots && lo <= node_max then begin
          let hi =
            if i >= nslots - 1 then node_max
            else
              let p = Target.as_int tgt (Target.load tgt (Target.index tgt pivots i)) in
              if p = 0 then node_max else p
          in
          let v = Target.as_int tgt (Target.load tgt (Target.index tgt slots i)) in
          (if leaf then (if v <> 0 then acc := Vtgt (Target.ptr_to Ctype.Void v) :: !acc)
           else if is_node v then descend v lo hi (depth + 1));
          if hi < node_max then go (i + 1) (hi + 1)
        end
      in
      go 0 node_min
    end
  in
  if root <> 0 then
    if is_node root then descend root 0 mt_max 0
    else acc := [ Vtgt (Target.ptr_to Ctype.Void root) ];
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Core evaluation *)

let max_boxes = 20_000

(* Parallel-split shape.  Both are functions of the element list alone
   — NEVER of the domain count — so the lane structure (and every
   per-lane rng stream seeded from lane ids) is identical across
   --domains 1/2/4. *)
let par_fanout = 8  (* don't split a For_each below this many elements *)
let par_max_shards = 16  (* fixed shard ceiling per split *)

let rec eval st env e : value =
  match e with
  | Cexpr src -> eval_cexpr st env src
  | Ref name -> (
      match lookup env name with
      | Some v -> v
      | None -> fail "unbound reference @%s" name)
  | Null_lit -> Vnull
  | Int_lit n -> Vtgt (Target.int_value n)
  | Str_lit s -> Vtgt (Target.str_value s)
  | Switch { scrutinee; cases; otherwise } -> (
      let sv = eval st env scrutinee in
      let matches case_v =
        match (sv, case_v) with
        | Vtgt { Target.loc = Target.Rstr a; _ }, Vtgt { Target.loc = Target.Rstr b; _ } -> a = b
        | a, b -> int_of_value st a = int_of_value st b
      in
      let rec try_cases = function
        | [] -> (
            match otherwise with
            | Some e -> eval st env e
            | None -> Vnull)
        | (labels, body) :: rest ->
            if List.exists (fun l -> matches (eval st env l)) labels then eval st env body
            else try_cases rest
      in
      try_cases cases)
  | For_each { src; var; body } -> (
      match stream_foreach st env src var body with
      | Some container -> container
      | None ->
          let subject, elems = eval_iterable st env src in
          let members = eval_members st env var body elems in
          make_container st ?subject (container_label src) members)
  | Apply { name; anchor; args } -> eval_apply st env name anchor args
  | Method { recv = "Array"; meth = "selectFrom"; args } -> (
      match args with
      | [ src; Str_lit def ] ->
          let srcv = eval st env src in
          let seeds = match srcv with Vbox id -> [ id ] | _ -> fail "selectFrom expects a box" in
          let ids = Vgraph.reachable st.graph seeds in
          let members =
            List.filter_map
              (fun id ->
                let b = Vgraph.get st.graph id in
                if b.Vgraph.bdef = def then Some (Vbox id) else None)
              ids
          in
          make_container st "Array" members
      | _ -> fail "Array.selectFrom(box, BoxDef)")
  | Method { recv; meth; _ } -> fail "unknown method %s.%s" recv meth
  | Anon_box { items; where } ->
      let this = match lookup env "this" with Some v -> v | None -> Vnull in
      build_box st env ~bdef:"" ~btype:"" ~addr:(match this with Vnull -> 0 | v -> addr_of_value st v)
        ~views:[ { vname = "default"; vparent = None; vitems = items; vwhere = [] } ]
        ~bwhere:where

and eval_elem st env var body elem =
  let env = (var, elem) :: env in
  let _, yields =
    List.fold_left
      (fun (env, acc) stmt ->
        match stmt with
        | Bind (n, e) -> ((n, eval st env e) :: env, acc)
        | Yield e -> (env, eval st env e :: acc))
      (env, []) body
  in
  List.rev yields

(* The parallel split point: any wide For_each — a top-level root loop
   or a container nested inside a box build — fans its element list out
   over the domain pool; everything narrower or already inside a lane
   evaluates sequentially in place.  Splits only ever happen on the
   joining thread (a lane never re-splits), so the program-order lane
   id counter stays race-free. *)
and eval_members st env var body elems =
  match st.pool with
  | Some pool when st.lane = None && List.length elems >= par_fanout ->
      eval_members_par st pool env var body elems
  | _ -> List.concat_map (eval_elem st env var body) elems

(* Fan a For_each body out over the pool.

   The element list is cut into [min n par_max_shards] contiguous
   shards — a function of the list alone, NEVER of the domain count, so
   the lane structure (and with it every per-lane rng stream) is
   identical across --domains 1/2/4.  Each shard runs against a fully
   lane-local world: a {!Target.fork} (own Kmem overlay view, own
   injection stream, own transport fork, own chaos hook), a
   {!Vgraph.fork} (reads fall through to the pre-split graph), a fresh
   plot cache, and an {!Obs.Lane} buffer.  The shared base state stays
   quiescent until every shard has joined; then the shards merge
   deterministically in lane order ({!merge_lane}), which makes the
   merged graph, fault journal, counters and cache byte-identical
   however many domains actually ran the shards. *)
and eval_members_par st pool env var body elems =
  let arr = Array.of_list elems in
  let n = Array.length arr in
  let nshards = min n par_max_shards in
  let base = st.split_seq in
  st.split_seq <- base + nshards;
  let tasks =
    List.init nshards (fun k ->
        let lane = base + k + 1 in
        let lo = k * n / nshards and hi = (k + 1) * n / nshards in
        lane_task st env var body ~lane (Array.to_list (Array.sub arr lo (hi - lo))))
  in
  let shards = Dpool.run pool tasks in
  List.concat_map
    (fun (lst, lobs, members) -> merge_lane st lst lobs members)
    shards

(* One lane shard: the whole lane-local world — target fork, graph
   fork, plot cache, obs buffer — is built on the submitting thread
   (forks capture nothing the submitter later mutates), then the
   returned thunk can run on any member, even while the submitter is
   still producing later shards (streamed walks). *)
and lane_task st env var body ~lane selems =
  let lgraph = Vgraph.fork st.graph in
  let lst =
    { st with
      tgt = Target.fork ~lane st.tgt;
      graph = lgraph;
      cache =
        { pc_graph = lgraph; pc_entries = Hashtbl.create 64;
          pc_by_box = Hashtbl.create 64; pc_run = 1 };
      reuse_ok = false; bad = Hashtbl.create 8;
      lane = Some lane; in_box = 0; split_seq = 0;
      box_budget = st.box_budget;
      hits = 0; misses = 0; invalidated = 0; rebuilt = [];
      torn_sections = 0; retries = 0; repaired = 0; torn_boxes = 0 }
  in
  let lobs = Obs.Lane.make () in
  fun () ->
    let members =
      Obs.Lane.scoped lobs (fun () ->
          List.concat_map (eval_elem lst env var body) selems)
    in
    (* the lane's share of simulated wire time rides on its own
       transport fork; report it so the pool's per-task timings —
       and the schedule model built on them — price compute plus
       wire cost per lane *)
    (match Target.transport lst.tgt with
    | Some ltr -> Dpool.charge (Transport.snapshot ltr).Transport.sim_ms
    | None -> ());
    (lst, lobs, members)

(* Streamed (pipelined) List extraction.  A linked-list walk is an
   inherently serial pointer chase — each [next] is a fresh wire
   round-trip on a high-latency link — and materialize-then-split
   leaves all of it as Amdahl serial remainder.  Here the walking
   thread instead publishes each chunk of discovered nodes to the pool
   the moment it is full, so idle domains build that chunk's boxes
   while the walk is still chasing the tail; the walk's own wall + wire
   cost is reported as one pool timing ({!Dpool.record}) — lane-0 work
   the schedule model can overlap with the builds it feeds.

   Guards: never inside a lane (no nested splits), never with a read
   hook armed (a serial chaos mutator would race live lanes — eager
   split keeps the parallel region quiescent), and lists shorter than
   [par_fanout] fall back to the sequential path before any task is
   submitted.  Chunking is a function of the discovery sequence alone
   (fixed [par_fanout]-sized chunks, lane ids claimed in program
   order), so the lane structure — and every per-lane rng stream — is
   identical across --domains 1/2/4. *)
and stream_foreach st env src var body =
  match (src, st.pool) with
  | Apply { name = "List"; args; _ }, Some pool
    when st.lane = None && not (Target.read_hook_armed st.tgt) ->
      let tv = target_arg st env args in
      let subject = subject_of st tv in
      let t0 = Unix.gettimeofday () in
      let sim () =
        match Target.transport st.tgt with
        | Some tr -> (Transport.snapshot tr).Transport.sim_ms
        | None -> 0.
      in
      let sim0 = sim () in
      let b = Dpool.batch pool in
      let committed = ref false in
      let pending = ref [] and npending = ref 0 in
      let flush () =
        if !npending > 0 then begin
          let selems = List.rev !pending in
          pending := [];
          npending := 0;
          let lane = st.split_seq + 1 in
          st.split_seq <- lane;
          Dpool.add b (lane_task st env var body ~lane selems)
        end
      in
      let emit v =
        pending := v :: !pending;
        incr npending;
        if !npending >= par_fanout then begin
          committed := true;
          flush ()
        end
      in
      let walk_exn =
        distilled "viewcl.distill.list" @@ fun () ->
        try
          iter_list_emit st tv emit;
          None
        with e -> Some e
      in
      if not !committed then begin
        (* narrow list: no task was submitted, evaluate in place *)
        (match walk_exn with Some e -> raise e | None -> ());
        let members = eval_members st env var body (List.rev !pending) in
        Some (make_container st ?subject "List" members)
      end
      else begin
        flush ();
        Dpool.record pool (((Unix.gettimeofday () -. t0) *. 1000.) +. (sim () -. sim0));
        (* drain before deciding the outcome: lanes must be quiescent
           (and their timings recorded) on every path, so a walk that
           raised still yields a deterministic pool state *)
        match walk_exn with
        | Some e ->
            (try ignore (Dpool.join b) with _ -> ());
            raise e
        | None ->
            let shards = Dpool.join b in
            let members =
              List.concat_map
                (fun (lst, lobs, members) -> merge_lane st lst lobs members)
                shards
            in
            Some (make_container st ?subject "List" members)
      end
  | _ -> None

(* Deterministic join of one lane, called on the joining domain in lane
   order.  Re-homes the lane's boxes into the shared graph/cache
   (dedup'ing against boxes already built this run, exactly where the
   sequential within-run memo would have shared them), absorbs the
   lane's observability buffer and its target's journal/counters, and
   returns the lane's yields remapped to shared box ids. *)
and merge_lane st lst lobs members =
  Obs.Lane.absorb lobs;
  (* Lane ids to import: reachable from the yields, stopping at boxes
     whose (def, addr) was already built this run — the within-run memo
     hit.  Their subtrees were rebuilt by the lane (lanes are
     isolated), but the shared copy wins and the duplicates are never
     imported, mirroring a sequential run where the memo hit means the
     subtree is never built at all. *)
  let map = Hashtbl.create 64 in
  let needed = Hashtbl.create 64 in
  let rec visit id =
    if Vgraph.is_local lst.graph id
       && (not (Hashtbl.mem map id))
       && not (Hashtbl.mem needed id)
    then begin
      let lb = Vgraph.get lst.graph id in
      let dup =
        if lb.Vgraph.bdef = "" then None
        else
          match Hashtbl.find_opt st.cache.pc_entries (lb.Vgraph.bdef, lb.Vgraph.addr) with
          | Some e when e.e_run = st.cache.pc_run -> Some e.e_box
          | _ -> None
      in
      match dup with
      | Some shared -> Hashtbl.replace map id shared
      | None ->
          Hashtbl.replace needed id ();
          List.iter visit (Vgraph.child_ids lb)
    end
  in
  List.iter (function Vbox id -> visit id | _ -> ()) members;
  (* Import in lane creation order (ascending lane id): shared-graph ids
     come out in the same order a sequential run of this shard would
     have assigned them. *)
  let order = Hashtbl.fold (fun id () acc -> id :: acc) needed [] |> List.sort compare in
  let fresh_entries = ref [] in
  List.iter
    (fun lid ->
      let lb = Vgraph.get lst.graph lid in
      let fresh () =
        let b =
          Vgraph.add_box st.graph ~btype:lb.Vgraph.btype ~bdef:lb.Vgraph.bdef
            ~addr:lb.Vgraph.addr ~size:lb.Vgraph.size ~container:lb.Vgraph.container
        in
        (match Hashtbl.find_opt lst.cache.pc_by_box lid with
        | Some le when lb.Vgraph.bdef <> "" ->
            let e =
              { e_box = b.Vgraph.id; e_name = lb.Vgraph.bdef; e_run = st.cache.pc_run;
                e_vhash = le.e_vhash; e_def = le.e_def; e_pages = le.e_pages;
                e_faulty = le.e_faulty }
            in
            Hashtbl.replace st.cache.pc_entries (lb.Vgraph.bdef, lb.Vgraph.addr) e;
            Hashtbl.replace st.cache.pc_by_box e.e_box e
        | _ -> ());
        (b, true)
      in
      let pb, was_fresh =
        if lb.Vgraph.bdef = "" then fresh ()
        else
          match Hashtbl.find_opt st.cache.pc_entries (lb.Vgraph.bdef, lb.Vgraph.addr) with
          | Some e -> (
              (* A stale entry from a previous run: rebuild in place
                 under its existing id (reused neighbours' links stay
                 valid), unless its frozen shape no longer matches. *)
              match Vgraph.find st.graph e.e_box with
              | Some b
                when b.Vgraph.btype = lb.Vgraph.btype && b.Vgraph.size = lb.Vgraph.size ->
                  Vgraph.reset_box b;
                  e.e_run <- st.cache.pc_run;
                  (b, false)
              | Some _ | None ->
                  Hashtbl.remove st.cache.pc_entries (lb.Vgraph.bdef, lb.Vgraph.addr);
                  Hashtbl.remove st.cache.pc_by_box e.e_box;
                  fresh ())
          | None -> fresh ()
      in
      Hashtbl.replace map lid pb.Vgraph.id;
      st.box_budget <- st.box_budget - 1;
      fresh_entries := (lid, pb, was_fresh) :: !fresh_entries)
    order;
  (* Second pass: contents, with box references remapped (lane-local ids
     through [map]; pre-split parent ids pass through unchanged). *)
  let m id = match Hashtbl.find_opt map id with Some p -> p | None -> id in
  let remap_item = function
    | Vgraph.Text _ as it -> it
    | Vgraph.Link { label; target } -> Vgraph.Link { label; target = Option.map m target }
    | Vgraph.Inline { label; target } -> Vgraph.Inline { label; target = m target }
  in
  List.iter
    (fun (lid, pb, was_fresh) ->
      let lb = Vgraph.get lst.graph lid in
      pb.Vgraph.views <-
        List.map (fun (vn, items) -> (vn, List.map remap_item items)) lb.Vgraph.views;
      pb.Vgraph.members <- List.map m lb.Vgraph.members;
      Hashtbl.iter (fun k v -> Hashtbl.replace pb.Vgraph.fields k v) lb.Vgraph.fields;
      (if was_fresh then begin
         pb.Vgraph.attrs.Vgraph.view <- lb.Vgraph.attrs.Vgraph.view;
         pb.Vgraph.attrs.Vgraph.trimmed <- lb.Vgraph.attrs.Vgraph.trimmed;
         pb.Vgraph.attrs.Vgraph.collapsed <- lb.Vgraph.attrs.Vgraph.collapsed;
         pb.Vgraph.attrs.Vgraph.direction <- lb.Vgraph.attrs.Vgraph.direction;
         pb.Vgraph.attrs.Vgraph.extra <- lb.Vgraph.attrs.Vgraph.extra
       end
       else
         (* In-place rebuild keeps the user's display refinements (what
            reset_box preserved) and adopts only the lane's extraction
            verdicts. *)
         List.iter
           (fun k ->
             match List.assoc_opt k lb.Vgraph.attrs.Vgraph.extra with
             | Some v ->
                 pb.Vgraph.attrs.Vgraph.extra <-
                   (k, v) :: List.remove_assoc k pb.Vgraph.attrs.Vgraph.extra
             | None -> ())
           [ "broken"; "torn"; "subject" ]);
      (* Adopt the lane's cache entry: page stamps recorded through the
         lane view equal the base generations unless lane chaos dirtied
         the page first — in which case they mismatch the base and the
         entry self-invalidates on the next warm run, exactly right
         since the lane's (discarded) writes shaped its contents. *)
      match (Hashtbl.find_opt st.cache.pc_by_box pb.Vgraph.id,
             Hashtbl.find_opt lst.cache.pc_by_box lid)
      with
      | Some e, Some le ->
          e.e_vhash <- le.e_vhash;
          e.e_def <- le.e_def;
          e.e_pages <- le.e_pages;
          e.e_faulty <- le.e_faulty;
          st.rebuilt <- pb.Vgraph.id :: st.rebuilt
      | _ -> ())
    (List.rev !fresh_entries);
  st.hits <- st.hits + lst.hits;
  st.misses <- st.misses + lst.misses;
  st.invalidated <- st.invalidated + lst.invalidated;
  st.torn_sections <- st.torn_sections + lst.torn_sections;
  st.retries <- st.retries + lst.retries;
  st.repaired <- st.repaired + lst.repaired;
  st.torn_boxes <- st.torn_boxes + lst.torn_boxes;
  Target.absorb st.tgt lst.tgt;
  List.map (function Vbox id -> Vbox (m id) | v -> v) members

and container_label = function
  | Apply { name; _ } -> name
  | Method { recv; _ } -> recv
  | Cexpr _ -> "Array"
  | _ -> "Container"

(* The struct the container constructor walked, as (type, address) —
   recorded on the container box so {!Sanity} checkers can re-validate
   the real structure behind it. *)
and subject_of st tv =
  match
    let v = match tv.Target.typ with Ctype.Ptr _ -> Target.deref st.tgt tv | _ -> tv in
    match v.Target.typ with
    | Ctype.Named n -> Some (n, Target.addr_of v)
    | _ -> None
  with
  | Some (_, 0) | None -> None
  | s -> s
  | exception _ -> None

and eval_iterable st env e : (string * int) option * value list =
  match e with
  | Apply { name = "List"; args; _ } ->
      let tv = target_arg st env args in
      (subject_of st tv, iter_list st tv)
  | Apply { name = "HList"; args; _ } ->
      let tv = target_arg st env args in
      (subject_of st tv, iter_hlist st tv)
  | Apply { name = "RBTree"; args; _ } ->
      let tv = target_arg st env args in
      (subject_of st tv, iter_rbtree st tv)
  | Apply { name = "XArray"; args; _ } ->
      let tv = target_arg st env args in
      (subject_of st tv, iter_xarray st tv)
  | Apply { name = "MapleEntries"; args; _ } ->
      let tv = target_arg st env args in
      (subject_of st tv, iter_maple st tv)
  | Apply { name = "Array"; args; _ } -> (None, iter_array st (List.map (eval st env) args))
  | Apply { name = "Range"; args = [ a; b ]; _ } ->
      let lo = int_of_value st (eval st env a) and hi = int_of_value st (eval st env b) in
      (None, List.init (max 0 (hi - lo)) (fun i -> Vtgt (Target.int_value (lo + i))))
  | _ -> (
      match eval st env e with
      | Vlist l -> (None, l)
      | Vbox id -> (None, List.map (fun m -> Vbox m) (Vgraph.get st.graph id).Vgraph.members)
      | v -> fail "cannot iterate over %s" (value_kind v))

and value_kind = function
  | Vtgt _ -> "a C value"
  | Vbox _ -> "a box"
  | Vlist _ -> "a container"
  | Vnull -> "NULL"

and target_arg st env args =
  match args with
  | [ a ] -> (
      match eval st env a with
      | Vtgt tv -> tv
      | Vnull -> Target.null_ptr
      | v -> fail "container constructor expects a C value, got %s" (value_kind v))
  | _ -> fail "container constructor expects one argument"

and make_container st ?subject label members =
  let ids =
    List.filter_map
      (function
        | Vbox id -> Some id
        | Vnull -> None
        | Vtgt tv when (match tv.Target.loc with Target.Rval 0 -> true | _ -> false) -> None
        | v -> fail "yield produced %s, expected a box" (value_kind v))
      members
  in
  let addr = match subject with Some (_, a) -> a | None -> 0 in
  let b = Vgraph.add_box st.graph ~btype:label ~bdef:"" ~addr ~size:0 ~container:true in
  (match subject with
  | Some (t, _) ->
      b.Vgraph.attrs.Vgraph.extra <- ("subject", t) :: b.Vgraph.attrs.Vgraph.extra
  | None -> ());
  b.Vgraph.members <- ids;
  Vgraph.set_view b "default" [];
  Vbox b.Vgraph.id

and eval_apply st env name anchor args =
  match Hashtbl.find_opt st.defs name with
  | Some def -> (
      (* Box construction. *)
      let argv = match args with [ a ] -> eval st env a | _ -> fail "%s(expr) takes one argument" name in
      if is_null st argv then Vnull
      else begin
        let addr = addr_of_value st argv in
        let addr =
          match anchor with
          | None -> addr
          | Some path ->
              (* container_of through the anchor path *)
              let comp, rest =
                match String.index_opt path '.' with
                | Some i -> (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))
                | None -> fail "anchor %S must be type.field" path
              in
              addr - Ctype.offsetof (Target.types st.tgt) comp rest
        in
        match cached_box st name def addr with
        | Some v -> v
        | None ->
            let this = Vtgt (Target.obj (Ctype.Named def.bctype) addr) in
            build_box st (("this", this) :: env) ~def ~bdef:name ~btype:def.bctype ~addr
              ~views:def.bviews ~bwhere:def.bwhere
      end)
  | None -> (
      (* Bare container constructors used without forEach: produce a plain
         container of raw entries is meaningless; treat as error except for
         known iterables which someone may bind then forEach later. *)
      match name with
      | "List" | "HList" | "RBTree" | "Array" | "XArray" | "MapleEntries" | "Range" ->
          Vlist (snd (eval_iterable st env (Apply { name; anchor; args })))
      | _ -> fail "unknown box definition or container %S" name)

(* The incremental-replot dispatch.  Three outcomes:
   - the entry was built (or adopted) earlier THIS run: plain memo hit,
     shared objects become shared boxes and cycles terminate;
   - the entry survives from a previous run and its whole subtree still
     matches live memory ({!subtree_valid}): adopt it — the subtree is
     reused with zero target reads;
   - otherwise fall through to a rebuild, which happens in place under
     the existing box id so reused neighbours' links stay valid. *)
and cached_box st name def addr =
  match Hashtbl.find_opt st.cache.pc_entries (name, addr) with
  | None ->
      st.misses <- st.misses + 1;
      if Obs.enabled () then Obs.Counter.incr c_box_misses;
      None
  | Some e when e.e_run = st.cache.pc_run -> Some (Vbox e.e_box)
  | Some e ->
      if st.reuse_ok && e.e_vhash = Hashtbl.hash def && e.e_def = def && subtree_valid st e
      then begin
        adopt st e;
        Some (Vbox e.e_box)
      end
      else begin
        st.invalidated <- st.invalidated + 1;
        if Obs.enabled () then Obs.Counter.incr c_box_invalidated;
        None
      end

(* Is every box reachable from [root_e] still a faithful snapshot?  A
   memoized box is fresh when the (page, generation) stamps recorded by
   its consistent section still match live memory and it did not degrade
   ([e_faulty]).  Containers without entries are walked through — their
   membership reads happened inside the enclosing box's section, so the
   enclosing stamps already cover them.  Anything else unmemoized (anon
   boxes own their reads but record no stamps) is conservatively stale.
   Entries already stamped with the current run were rebuilt or adopted
   moments ago and need no descent. *)
and subtree_valid st root_e =
  let mem = Target.mem st.tgt in
  let run = st.cache.pc_run in
  let seen = Hashtbl.create 32 in
  let ok = ref true in
  let stack = ref [ root_e.e_box ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | id :: rest ->
        stack := rest;
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          if Hashtbl.mem st.bad id then begin
            ok := false;
            continue := false
          end
          else
            match (Hashtbl.find_opt st.cache.pc_by_box id, Vgraph.find st.graph id) with
            | _, None -> ok := false; continue := false
            | Some e, Some b ->
                if e.e_run = run then ()
                else if
                  e.e_faulty
                  || not
                       (List.for_all
                          (fun (p, g0) -> Kmem.page_generation mem p = g0)
                          e.e_pages)
                then begin
                  ok := false;
                  continue := false
                end
                else stack := List.rev_append (Vgraph.child_ids b) !stack
            | None, Some b ->
                if b.Vgraph.container then
                  stack := List.rev_append (Vgraph.child_ids b) !stack
                else begin
                  ok := false;
                  continue := false
                end
        end
  done;
  if not !ok then Hashtbl.replace st.bad root_e.e_box ();
  !ok

(* Stamp every entry in a validated subtree as current, counting each
   adopted box as a cache hit. *)
and adopt st root_e =
  let run = st.cache.pc_run in
  let seen = Hashtbl.create 32 in
  let stack = ref [ root_e.e_box ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | id :: rest -> (
        stack := rest;
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          match (Hashtbl.find_opt st.cache.pc_by_box id, Vgraph.find st.graph id) with
          | Some e, Some b when e.e_run <> run ->
              e.e_run <- run;
              st.hits <- st.hits + 1;
              if Obs.enabled () then Obs.Counter.incr c_box_hits;
              stack := List.rev_append (Vgraph.child_ids b) !stack
          | Some _, _ -> ()
          | None, Some b when b.Vgraph.container ->
              stack := List.rev_append (Vgraph.child_ids b) !stack
          | None, _ -> ()
        end)
  done

and effective_items def_views vname =
  (* Resolve view inheritance: parent items first. *)
  let rec items_of vname seen =
    if List.mem vname seen then fail "view inheritance cycle at :%s" vname;
    match List.find_opt (fun v -> v.vname = vname) def_views with
    | None -> fail "no view :%s" vname
    | Some v -> (
        let own = (v.vitems, v.vwhere) in
        match v.vparent with
        | None -> [ own ]
        | Some p -> items_of p (vname :: seen) @ [ own ])
  in
  items_of vname []

and build_box ?def st env ~bdef ~btype ~addr ~views ~bwhere =
  if not (Obs.enabled ()) then build_box_raw ?def st env ~bdef ~btype ~addr ~views ~bwhere
  else
    Obs.with_span ~cat:"viewcl"
      ~attrs:
        [ ("def", (if bdef = "" then "(anon)" else bdef));
          ("type", btype); ("addr", Printf.sprintf "0x%x" addr) ]
      "viewcl.box"
      (fun () -> build_box_raw ?def st env ~bdef ~btype ~addr ~views ~bwhere)

and build_box_raw ?def st env ~bdef ~btype ~addr ~views ~bwhere =
  if st.box_budget <= 0 then fail "plot exceeds %d boxes; refine the ViewCL program" max_boxes;
  st.box_budget <- st.box_budget - 1;
  st.in_box <- st.in_box + 1;
  Fun.protect ~finally:(fun () -> st.in_box <- st.in_box - 1) @@ fun () ->
  let size =
    if btype <> "" && Ctype.is_defined (Target.types st.tgt) btype then
      Ctype.sizeof (Target.types st.tgt) (Ctype.Named btype)
    else 0
  in
  (* An invalidated entry rebuilds IN PLACE: the box keeps its id, so
     links into it from adopted neighbours stay valid.  The entry is
     stamped with the current run BEFORE building so cyclic references
     back into this box hit the within-run path of {!cached_box},
     exactly like the old per-run memo. *)
  let b, entry =
    let reuse =
      if bdef = "" then None
      else
        match Hashtbl.find_opt st.cache.pc_entries (bdef, addr) with
        | Some e -> (
            match Vgraph.find st.graph e.e_box with
            | Some b when b.Vgraph.btype = btype && b.Vgraph.size = size -> Some (b, e)
            | Some _ | None ->
                (* The definition changed its C type since the entry was
                   built: btype/size are frozen at add_box and indexed
                   by name, so in-place reuse would leave the box (and
                   the by_name index) lying about its type.  Drop the
                   entry and allocate a fresh box below; the orphaned
                   box is unreachable and swept at end of run. *)
                Hashtbl.remove st.cache.pc_entries (bdef, addr);
                Hashtbl.remove st.cache.pc_by_box e.e_box;
                None)
        | None -> None
    in
    match reuse with
    | Some (b, e) ->
        Vgraph.reset_box b;
        (b, Some e)
    | None -> (
        let b = Vgraph.add_box st.graph ~btype ~bdef ~addr ~size ~container:false in
        match def with
        | Some d when bdef <> "" ->
            let e =
              { e_box = b.Vgraph.id; e_name = bdef; e_run = 0; e_vhash = Hashtbl.hash d;
                e_def = d; e_pages = []; e_faulty = false }
            in
            Hashtbl.replace st.cache.pc_entries (bdef, addr) e;
            Hashtbl.replace st.cache.pc_by_box e.e_box e;
            (b, Some e)
        | _ -> (b, None))
  in
  (match entry with
  | Some e ->
      e.e_run <- st.cache.pc_run;
      (* Poisoned until the extraction below completes: if the run
         raises out of build_box_raw (box budget, eval error), the
         half-built box must never pass {!subtree_valid} on its stale
         page stamps and be adopted by a later refresh as a faithful
         snapshot.  A clean extract restores validity at the end. *)
      e.e_faulty <- true
  | None -> ());
  (* Graceful degradation: collect the memory faults hit while building
     THIS box (nested boxes keep theirs — with_faults nests).  A faulting
     box stays in the plot, visibly broken, instead of aborting the
     extraction; ViewCL program errors (fail/Viewcl.Error) still abort. *)
  let build () =
    (* box-level where bindings *)
    let env = eval_bindings st env bwhere in
    (* Each declared view gets its items (inherited views prepended). *)
    List.iter
      (fun v ->
        let chains = effective_items views v.vname in
        let items =
          List.concat_map
            (fun (vitems, vwhere) ->
              let venv = eval_bindings st env vwhere in
              List.concat_map (eval_item st venv b) vitems)
            chains
        in
        Vgraph.set_view b v.vname items)
      views
  in
  (* Snapshot consistency: build inside a consistent section and, when a
     writer raced it (dirty pages at section end), discard the views and
     re-extract up to [max_retries] times.  Nested boxes own their reads
     (sections nest innermost-only) and are memoized, so a retry re-reads
     only THIS box's ranges.  [end_consistent] runs inside [with_faults]
     so the Torn faults belong to this box, not its parent. *)
  let attempt () =
    (* Struct-granular coalescing: pull the whole struct extent in one
       transport round-trip, so the per-field reads below all hit the
       generation-validated page cache.  A failed prefetch records
       nothing — the per-field reads then fetch (and fault)
       individually, keeping [BROKEN]/[TORN] semantics untouched. *)
    if size > 0 && addr <> 0 then Target.prefetch st.tgt addr size;
    Target.with_faults st.tgt (fun () ->
        let sec = Target.begin_consistent st.tgt in
        match build () with
        | () ->
            let dirty = Target.end_consistent st.tgt sec in
            (dirty, Target.section_pages sec)
        | exception e ->
            ignore (Target.end_consistent st.tgt sec);
            raise e)
  in
  let rec extract n =
    let (dirty, pages), box_faults = attempt () in
    if dirty = [] then begin
      if n > 0 then st.repaired <- st.repaired + 1;
      (dirty, pages, box_faults)
    end
    else begin
      st.torn_sections <- st.torn_sections + 1;
      if n < st.limits.max_retries then begin
        st.retries <- st.retries + 1;
        b.Vgraph.views <- [];
        extract (n + 1)
      end
      else begin
        st.torn_boxes <- st.torn_boxes + 1;
        (dirty, pages, box_faults)
      end
    end
  in
  let dirty, pages, box_faults = extract 0 in
  (* Torn faults degrade to a [TORN] tag below, not a [BROKEN] one. *)
  let mem_faults = List.filter (function Target.Torn _ -> false | _ -> true) box_faults in
  (match mem_faults with
  | [] -> ()
  | f :: _ ->
      let n = List.length mem_faults in
      let reason = Target.fault_to_string f in
      let reason = if n > 1 then Printf.sprintf "%s (+%d more)" reason (n - 1) else reason in
      Vgraph.mark_broken b reason;
      b.Vgraph.views <-
        List.map
          (fun (vn, items) ->
            (vn, items @ [ Vgraph.Text { label = "!fault"; value = reason; raw = Vgraph.Fstr reason } ]))
          b.Vgraph.views);
  (match dirty with
  | [] -> ()
  | (lo, hi) :: more ->
      let reason =
        Printf.sprintf "raced by a writer: [0x%x,0x%x)%s still dirty after %d retries" lo hi
          (match more with [] -> "" | _ -> Printf.sprintf " (+%d more ranges)" (List.length more))
          st.limits.max_retries
      in
      Vgraph.mark_torn b reason;
      b.Vgraph.views <-
        List.map
          (fun (vn, items) ->
            (vn, items @ [ Vgraph.Text { label = "!torn"; value = reason; raw = Vgraph.Fstr reason } ]))
          b.Vgraph.views);
  (match entry with
  | None -> ()
  | Some e ->
      (match def with
      | Some d ->
          e.e_vhash <- Hashtbl.hash d;
          e.e_def <- d
      | None -> ());
      e.e_pages <- pages;
      e.e_faulty <- mem_faults <> [] || dirty <> [];
      st.rebuilt <- b.Vgraph.id :: st.rebuilt);
  Vbox b.Vgraph.id

and eval_bindings st env bindings =
  List.fold_left (fun env (n, e) -> (n, eval st env e) :: env) env bindings

and eval_item st env box it : Vgraph.item list =
  let this () =
    match lookup env "this" with
    | Some (Vtgt tv) -> tv
    | _ -> fail "no @this in scope for a path item"
  in
  match it with
  | I_text { dec; specs } ->
      List.map
        (fun { label; source } ->
          let tv =
            match source with
            | Path p -> Target.load st.tgt (Target.member_path st.tgt (this ()) p)
            | Texpr e -> (
                match eval st env e with
                | Vtgt tv -> tv
                | Vnull -> Target.null_ptr
                | Vbox id -> Target.int_value (Vgraph.get st.graph id).Vgraph.addr
                | Vlist _ -> fail "Text cannot display a container")
          in
          let text, raw = format_value st dec tv in
          Vgraph.record_field box label raw;
          Vgraph.Text { label; value = text; raw })
        specs
  | I_link { label; target } -> (
      match eval st env target with
      | Vnull ->
          Vgraph.record_field box label (Vgraph.Faddr 0);
          [ Vgraph.Link { label; target = None } ]
      | Vbox id ->
          Vgraph.record_field box label (Vgraph.Faddr (Vgraph.get st.graph id).Vgraph.addr);
          [ Vgraph.Link { label; target = Some id } ]
      | Vtgt tv when (match tv.Target.loc with Target.Rval 0 -> true | _ -> false) ->
          Vgraph.record_field box label (Vgraph.Faddr 0);
          [ Vgraph.Link { label; target = None } ]
      | Vtgt _ -> fail "Link %s must point at a box (or NULL)" label
      | Vlist _ -> fail "Link %s points at a container; use Container" label)
  | I_container { label; target } -> (
      match eval st env target with
      | Vbox id -> [ Vgraph.Inline { label; target = id } ]
      | Vlist members -> (
          match make_container st "Array" members with
          | Vbox id -> [ Vgraph.Inline { label; target = id } ]
          | _ -> assert false)
      | Vnull -> [ Vgraph.Text { label; value = "(empty)"; raw = Vgraph.Fstr "" } ]
      | Vtgt _ -> fail "Container %s expects a container value" label)

(* ------------------------------------------------------------------ *)
(* Program execution *)

type result = {
  graph : Vgraph.t;
  plots : Vgraph.box_id list;
  torn : int;  (** consistent sections that closed dirty (writer raced the walk) *)
  retried : int;  (** box re-extraction attempts performed *)
  repaired : int;  (** boxes whose retry produced a clean snapshot *)
  torn_boxes : int;  (** boxes degraded to [TORN] after the retry budget *)
  cache : plot_cache;  (** pass back to {!run_exn} for an incremental re-plot *)
  cache_hits : int;  (** boxes adopted from the previous run with zero reads *)
  cache_misses : int;  (** (def, addr) keys never built before *)
  cache_invalidated : int;  (** stale entries re-extracted in place *)
  rebuilt : Vgraph.box_id list;  (** memoized boxes extracted this run, ascending *)
}

let run_exn ?(cfg = default_config) ?(defs = []) ?(limits = default_limits) ?cache ?pool tgt
    program =
  Obs.with_span ~cat:"viewcl"
    ~attrs:[ ("stmts", string_of_int (List.length program)) ]
    "viewcl.run"
  @@ fun () ->
  let cache = match cache with Some c -> c | None -> create_cache () in
  cache.pc_run <- cache.pc_run + 1;
  let saved_roots = Vgraph.roots cache.pc_graph in
  Vgraph.clear_roots cache.pc_graph;
  let st =
    { tgt; cfg; graph = cache.pc_graph; defs = Hashtbl.create 32; cache;
      reuse_ok = not (Kmem.injection_active (Target.mem tgt));
      bad = Hashtbl.create 32; limits; box_budget = max_boxes;
      pool = (match pool with Some p when Dpool.size p >= 1 -> Some p | _ -> None);
      lane = None; in_box = 0; split_seq = 0;
      hits = 0; misses = 0; invalidated = 0; rebuilt = [];
      torn_sections = 0; retries = 0; repaired = 0; torn_boxes = 0 }
  in
  List.iter (fun d -> Hashtbl.replace st.defs d.bname d) defs;
  let env = ref [] in
  let plots = ref [] in
  (try
     List.iter
       (function
         | Define d -> Hashtbl.replace st.defs d.bname d
         | Top_bind (n, e) -> env := (n, eval st !env e) :: !env
         | Plot e -> (
             match eval st !env e with
             | Vbox id ->
                 Vgraph.set_root st.graph id;
                 plots := id :: !plots
             | Vnull -> ()
             | v -> fail "plot expects a box, got %s" (value_kind v)))
       program
   with e ->
     (* Roll the shared graph back to a displayable state: the previous
        plot's roots come back, so the pane is not left rootless.  Any
        box the failed run was mid-rebuilding is already poisoned
        ([e_faulty], set before its build), so no later refresh can
        adopt its reset contents as a valid snapshot — it re-extracts.
        Callers holding this cache should drop it (vrefresh does), so
        the next plot of the pane starts cold. *)
     Vgraph.set_roots cache.pc_graph saved_roots;
     raise e);
  (* Sweep: a box this run neither plotted nor evaluated — unreachable
     from the new roots and not stamped with the current run — is dead
     weight from earlier runs.  Dropping dead boxes (and their memo
     entries) bounds the persistent graph and the cache by the live
     plot, instead of accumulating every box ever extracted. *)
  let keep =
    Hashtbl.fold
      (fun id e acc -> if e.e_run = cache.pc_run then id :: acc else acc)
      cache.pc_by_box []
  in
  (match Vgraph.sweep st.graph ~keep with
  | [] -> ()
  | removed ->
      let dead = Hashtbl.create 16 in
      List.iter (fun id -> Hashtbl.replace dead id ()) removed;
      List.iter (Hashtbl.remove cache.pc_by_box) removed;
      let stale_keys =
        Hashtbl.fold
          (fun k e acc -> if Hashtbl.mem dead e.e_box then k :: acc else acc)
          cache.pc_entries []
      in
      List.iter (Hashtbl.remove cache.pc_entries) stale_keys);
  { graph = st.graph; plots = List.rev !plots;
    torn = st.torn_sections; retried = st.retries; repaired = st.repaired;
    torn_boxes = st.torn_boxes;
    cache = st.cache; cache_hits = st.hits; cache_misses = st.misses;
    cache_invalidated = st.invalidated; rebuilt = List.sort_uniq compare st.rebuilt }

(* Surface target-layer failures (bad member paths, derefs, ...) as
   ViewCL errors. *)
let run ?cfg ?defs ?limits ?cache ?pool tgt program =
  try run_exn ?cfg ?defs ?limits ?cache ?pool tgt program
  with Invalid_argument m -> fail "%s" m
