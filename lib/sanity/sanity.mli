(** Structural sanitizer: a pluggable registry of invariant checkers
    that validate extracted boxes against the laws of the data
    structures they claim to be.

    Consistent sections (Target) guarantee the bytes of a box were not
    mutated mid-read; they cannot say whether those bytes form a legal
    structure.  A silently corrupted kernel — bit flips, StackRot-style
    freed-node reuse — extracts "cleanly" into a graph that violates
    its own invariants.  The sanitizer reads the {e real} memory behind
    each box of an extracted graph and emits typed verdicts, rendered
    as [SUSPECT:<law>] box tags and counted in the {!Obs} registry
    ([sanity.checked] / [sanity.suspect]).

    Built-in laws:
    - ["rbtree"] — red-red freedom, equal black heights, parent-pointer
      symmetry, black root; for [rb_root_cached], the leftmost cache
      must name the tree's actual first node
    - ["maple"] — pivot monotonicity and encoded-pointer tag validity
    - ["list"] — [list_head] cycle closure and prev/next symmetry
    - ["xarray"] — radix geometry (shift chain 6-by-6 to zero) bounding
      every index, no node cycles

    All checkers are bounded and cycle-proof: safe on arbitrarily
    corrupted structures. *)

type verdict = {
  law : string;  (** which law failed ("rbtree", "maple", "list", ...) *)
  box : Vgraph.box_id;  (** the box found suspect *)
  subject : Kmem.addr;  (** address of the structure checked *)
  reason : string;  (** the first violation, human-readable *)
}

val verdict_to_string : verdict -> string

(** One pluggable checker: [applies] selects boxes by shape (usually
    [btype]), [run] reads the real memory behind the box and returns
    [Error reason] on the first violated law.  [run] must be bounded
    and must not raise on corrupted input. *)
type checker = {
  law : string;
  applies : Vgraph.box -> bool;
  run : Kcontext.t -> Vgraph.box -> (unit, string) result;
}

val builtins : checker list
(** The four built-in checkers (rbtree, maple, list, xarray). *)

val register : checker -> unit
(** Append a checker to the registry (after the builtins). *)

val checkers : unit -> checker list
val reset : unit -> unit
(** Restore the registry to just the builtins (used by tests). *)

val check_box : Kcontext.t -> Vgraph.box -> verdict list
(** Verdicts of every applicable registered checker on one box. *)

val check_graph : ?mark:bool -> Kcontext.t -> Vgraph.t -> verdict list
(** Run the registry over every box of the graph.  [mark] (default
    true) stamps suspect boxes with {!Vgraph.mark_suspect} so the next
    render shows their [SUSPECT:<law>] tags. *)
