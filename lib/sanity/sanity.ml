(** Structural sanitizer: validate extracted boxes against the laws of
    the data structures they claim to be.

    Snapshot consistency (Target's consistent sections) says the bytes
    were not mutated mid-read; it says nothing about whether they form
    a legal structure — a silently corrupted kernel (bit flips, the
    StackRot freed-node reuse) extracts "cleanly" into an object graph
    that violates its own invariants.  The sanitizer closes that gap:
    a registry of per-law checkers runs over the boxes of an extracted
    {!Vgraph}, reading the {e real} memory behind each box, and emits
    typed verdicts that render as [SUSPECT:<law>] tags and feed the
    {!Obs} metrics registry.

    Checkers must be safe on arbitrarily corrupted structures: bounded,
    cycle-proof, never raising (reads of wild/freed memory already
    degrade to poison bytes at the {!Kmem} layer). *)

type verdict = {
  law : string;  (** which law failed ("rbtree", "maple", "list", ...) *)
  box : Vgraph.box_id;  (** the box found suspect *)
  subject : Kmem.addr;  (** address of the structure checked *)
  reason : string;  (** the first violation, human-readable *)
}

let verdict_to_string v =
  Printf.sprintf "[SUSPECT:%s] box #%d @0x%x: %s" v.law v.box v.subject v.reason

type checker = {
  law : string;
  applies : Vgraph.box -> bool;
  run : Kcontext.t -> Vgraph.box -> (unit, string) result;
}

(* ------------------------------------------------------------------ *)
(* Built-in checkers *)

(* Small guard shared by all builtins: a checker only makes sense for a
   box standing for a real object. *)
let addressed b = b.Vgraph.addr <> 0

(* The struct type a box answers for.  Container boxes carry the walked
   structure as a "subject" attr (e.g. an RBTree container whose subject
   is the rb_root_cached it traversed); plain boxes answer for their own
   btype. *)
let subject_type b =
  match List.assoc_opt "subject" b.Vgraph.attrs.Vgraph.extra with
  | Some t -> t
  | None -> b.Vgraph.btype

(* rbtree: red-red freedom, equal black heights, parent-pointer
   symmetry, black root (Krbtree.check); for rb_root_cached also the
   leftmost cache, which must point at the tree's actual first node. *)
let rbtree_checker =
  {
    law = "rbtree";
    applies =
      (fun b ->
        addressed b && (subject_type b = "rb_root" || subject_type b = "rb_root_cached"));
    run =
      (fun ctx b ->
        let root =
          if subject_type b = "rb_root_cached" then Krbtree.cached_root ctx b.Vgraph.addr
          else b.Vgraph.addr
        in
        match Krbtree.check ctx root with
        | Error _ as e -> e
        | Ok _ when subject_type b = "rb_root_cached" ->
            let cached = Krbtree.leftmost ctx b.Vgraph.addr in
            let actual = Krbtree.first ctx root in
            if cached <> actual then
              Error
                (Printf.sprintf "rbtree: cached leftmost 0x%x but first node is 0x%x" cached
                   actual)
            else Ok ()
        | Ok _ -> Ok ());
  }

(* maple tree: pivot monotonicity + encoded-pointer tag validity. *)
let maple_checker =
  {
    law = "maple";
    applies = (fun b -> addressed b && subject_type b = "maple_tree");
    run =
      (fun ctx b ->
        match Kmaple.check ctx b.Vgraph.addr with Error _ as e -> e | Ok _ -> Ok ());
  }

(* list_head: the ring must close back at the head within a bounded
   number of hops, with prev/next symmetric at every step. *)
let list_max_nodes = 65536

let list_checker =
  {
    law = "list";
    applies = (fun b -> addressed b && subject_type b = "list_head");
    run =
      (fun ctx b ->
        let open Kcontext in
        let head = b.Vgraph.addr in
        let next a = r64 ctx a "list_head" "next" in
        let prev a = r64 ctx a "list_head" "prev" in
        let rec go a n =
          if n > list_max_nodes then
            Error (Printf.sprintf "list: no cycle closure within %d nodes" list_max_nodes)
          else
            let nx = next a in
            if nx = 0 then Error (Printf.sprintf "list: NULL next at 0x%x" a)
            else if prev nx <> a then
              Error
                (Printf.sprintf "list: 0x%x.next.prev is 0x%x, expected 0x%x" a (prev nx) a)
            else if nx = head then Ok ()
            else go nx (n + 1)
        in
        go head 0);
  }

(* xarray: the radix geometry bounds every index — node shifts are
   multiples of XA_CHUNK_SHIFT (6), strictly decreasing by 6 per level
   down to 0 at the leaves, with no node cycles.  A violated shift
   chain means some stored index escapes its advertised bounds. *)
let xarray_max_nodes = 4096

let xarray_checker =
  {
    law = "xarray";
    applies = (fun b -> addressed b && subject_type b = "xarray");
    run =
      (fun ctx b ->
        let open Kcontext in
        let head = r64 ctx b.Vgraph.addr "xarray" "xa_head" in
        let is_node e = e land 3 = 2 && e > 4096 in
        if head = 0 || not (is_node head) then Ok ()
        else begin
          let exception Bad of string in
          let seen = Hashtbl.create 64 in
          let count = ref 0 in
          let rec walk e =
            let na = e land lnot 3 in
            if Hashtbl.mem seen na then
              raise (Bad (Printf.sprintf "xarray: node cycle through 0x%x" na));
            Hashtbl.add seen na ();
            incr count;
            if !count > xarray_max_nodes then
              raise
                (Bad (Printf.sprintf "xarray: more than %d nodes (runaway structure)"
                        xarray_max_nodes));
            let shift = r8 ctx na "xa_node" "shift" in
            if shift mod 6 <> 0 || shift >= 64 then
              raise (Bad (Printf.sprintf "xarray: node 0x%x has invalid shift %d" na shift));
            let slots = fld ctx na "xa_node" "slots" in
            for i = 0 to 63 do
              let child = Kmem.read_u64 ctx.mem (slots + (8 * i)) in
              if is_node child then begin
                if shift = 0 then
                  raise
                    (Bad
                       (Printf.sprintf "xarray: leaf node 0x%x holds an internal pointer" na));
                let ca = child land lnot 3 in
                let cshift = r8 ctx ca "xa_node" "shift" in
                if cshift <> shift - 6 then
                  raise
                    (Bad
                       (Printf.sprintf
                          "xarray: child 0x%x of node 0x%x has shift %d, expected %d" ca na
                          cshift (shift - 6)));
                walk child
              end
            done
          in
          match walk head with () -> Ok () | exception Bad m -> Error m
        end);
  }

let builtins = [ rbtree_checker; maple_checker; list_checker; xarray_checker ]

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry : checker list ref = ref builtins

let register c = registry := !registry @ [ c ]
let checkers () = !registry
let reset () = registry := builtins

(* ------------------------------------------------------------------ *)
(* Running *)

let c_checked = Obs.Counter.make "sanity.checked"
let c_suspect = Obs.Counter.make "sanity.suspect"

let check_box ctx (b : Vgraph.box) =
  List.filter_map
    (fun c ->
      if not (c.applies b) then None
      else begin
        if Obs.enabled () then Obs.Counter.incr c_checked;
        match c.run ctx b with
        | Ok () -> None
        | Error reason ->
            if Obs.enabled () then begin
              Obs.Counter.incr c_suspect;
              Obs.instant ~cat:"sanity"
                ~attrs:[ ("law", c.law); ("reason", reason) ]
                "sanity.suspect"
            end;
            Some { law = c.law; box = b.Vgraph.id; subject = b.Vgraph.addr; reason }
      end)
    (checkers ())

(** Run every applicable checker over every box of [g].  [mark]
    (default true) stamps suspect boxes with {!Vgraph.mark_suspect}, so
    the next render shows [SUSPECT:<law>] tags. *)
let check_graph ?(mark = true) ctx g =
  let go () =
    List.concat_map
      (fun b ->
        let vs = check_box ctx b in
        if mark then
          List.iter (fun (v : verdict) -> Vgraph.mark_suspect b ~law:v.law v.reason) vs;
        vs)
      (Vgraph.boxes g)
  in
  if Obs.enabled () then Obs.with_span ~cat:"sanity" "sanity.check_graph" go else go ()
