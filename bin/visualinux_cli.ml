(* The visualinux command-line front-end.

   Boots the simulated kernel, runs the evaluation workload, and executes
   v-commands — either one-shot via subcommands or interactively via a
   GDB-style prompt.

   Examples:
     visualinux figures                 # list the Table 2 script library
     visualinux plot 7-1                # render a figure as ASCII
     visualinux plot 9-2 --format dot   # ... or Graphviz/SVG/JSON
     visualinux chat 7-1 "display view \"sched\" of all processes"
     visualinux query 3-4 'a = SELECT task_struct FROM * WHERE pid > 5
                           UPDATE a WITH collapsed: true'
     visualinux repl                    # interactive session
*)

open Cmdliner

let boot_session seed iters =
  let kernel = Kstate.boot () in
  let w = Workload.create ~seed kernel in
  Workload.run ~iters w;
  (* A fault-free local link by default: pure latency accounting until
     the user turns faults on with `link rate`. *)
  let transport = Transport.create Transport.qemu_local in
  Visualinux.attach ~transport kernel

(* common options *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")

let iters_arg =
  Arg.(value & opt int 3 & info [ "iters" ] ~docv:"N" ~doc:"Workload iterations.")

let format_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("ascii", `Ascii); ("dot", `Dot); ("svg", `Svg); ("json", `Json);
             ("html", `Html) ])
        `Ascii
    & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output format: ascii, dot, svg, json or html.")

let render fmt graph =
  match fmt with
  | `Ascii -> Render.ascii graph
  | `Dot -> Render.dot graph
  | `Svg -> Render.svg graph
  | `Json -> Vgraph.to_json graph
  | `Html -> Render_html.html graph

let fig_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FIG" ~doc:"Figure id from the script library (e.g. 7-1, 9-2, socketconn).")

let find_script fig =
  match Scripts.find fig with
  | Some sc -> Ok sc
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown figure %S; try one of: %s" fig
             (String.concat ", " (List.map (fun s -> s.Scripts.fig) Scripts.table2))))

(* ------------------------------------------------------------------ *)
(* figures *)

let figures_cmd =
  let doc = "List the ViewCL script library (the Table 2 figures)." in
  let run () =
    Printf.printf "%-12s %-45s %4s %s\n" "id" "description" "LoC" "delta";
    List.iter
      (fun (sc : Scripts.script) ->
        Printf.printf "%-12s %-45s %4d %s\n" sc.Scripts.fig sc.Scripts.descr (Scripts.loc sc)
          (Scripts.delta_glyph sc.Scripts.delta))
      Scripts.table2
  in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* plot *)

let plot_cmd =
  let doc = "Evaluate a library ViewCL program (vplot) and render the result." in
  let run seed iters fmt fig =
    match find_script fig with
    | Error e -> Error e
    | Ok sc ->
        let s = boot_session seed iters in
        let _, res, stats = Visualinux.plot_figure s sc in
        print_string (render fmt res.Viewcl.graph);
        Printf.eprintf "[%d boxes, %d target reads, %.2f ms]\n" stats.Visualinux.boxes
          stats.Visualinux.reads stats.Visualinux.wall_ms;
        Ok ()
  in
  Cmd.v
    (Cmd.info "plot" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg))

(* ------------------------------------------------------------------ *)
(* plot-file: run a user-supplied .vcl program *)

let plot_file_cmd =
  let doc = "Evaluate a ViewCL program from a file (vplot)." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"ViewCL source file.")
  in
  let run seed iters fmt file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let s = boot_session seed iters in
    match Visualinux.vplot s ~title:file src with
    | _, res, _ ->
        print_string (render fmt res.Viewcl.graph);
        Ok ()
    | exception Viewcl.Error m -> Error (`Msg m)
  in
  Cmd.v
    (Cmd.info "plot-file" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ file_arg))

(* ------------------------------------------------------------------ *)
(* query: plot a figure then apply ViewQL (vctrl) *)

let query_cmd =
  let doc = "Plot a figure, then apply a ViewQL program to it (vctrl)." in
  let ql_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"VIEWQL" ~doc:"ViewQL program.")
  in
  let run seed iters fmt fig ql =
    match find_script fig with
    | Error e -> Error e
    | Ok sc -> (
        let s = boot_session seed iters in
        let pane, res, _ = Visualinux.plot_figure s sc in
        match Visualinux.vctrl s (Visualinux.Apply { pane = pane.Panel.pid; viewql = ql }) with
        | Visualinux.Updated n ->
            Printf.eprintf "[%d boxes updated]\n" n;
            print_string (render fmt res.Viewcl.graph);
            Ok ()
        | _ -> Error (`Msg "unexpected vctrl result")
        | exception Viewql.Error m -> Error (`Msg m))
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg $ ql_arg))

(* ------------------------------------------------------------------ *)
(* chat: plot a figure then refine with natural language (vchat) *)

let chat_cmd =
  let doc = "Plot a figure, then refine it with a natural-language request (vchat)." in
  let nl_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"TEXT" ~doc:"Natural-language refinement.")
  in
  let run seed iters fmt fig text =
    match find_script fig with
    | Error e -> Error e
    | Ok sc -> (
        let s = boot_session seed iters in
        let pane, res, _ = Visualinux.plot_figure s sc in
        match Visualinux.vchat s ~pane:pane.Panel.pid text with
        | prog, n ->
            Printf.eprintf "synthesized ViewQL:\n%s\n[%d boxes updated]\n" prog n;
            print_string (render fmt res.Viewcl.graph);
            Ok ()
        | exception Vchat.Cannot_synthesize _ ->
            Error (`Msg "could not synthesize a ViewQL program from that description"))
  in
  Cmd.v
    (Cmd.info "chat" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg $ nl_arg))

(* ------------------------------------------------------------------ *)
(* repl *)

let repl_help =
  {|v-commands:
  vplot <fig>            plot a library figure into a new pane
  vplot auto <type> <C-expr>
                         synthesize a trivial ViewCL program for a struct
  vctrl ql <pane> <viewql ...>    apply ViewQL to a pane
  vctrl split <pane> <h|v> <fig>  split a pane with a new figure
  vctrl select <pane> <box-ids..> pick boxes into a secondary pane
  vctrl focus <hex-addr>          find an object in all panes
  vctrl close <pane>              close a pane
  vchat <pane> <text>    natural language -> ViewQL -> apply
  show <pane> [ascii|dot|svg|json]
  panes                  list panes ([STALE] = awaiting re-extraction)
  link                   show transport health
  link down | up         force-disconnect / reconnect the target link
  link rate <r>          fault rates: stalls+drops at r, disconnects r/20
  link deadline <ms|off> per-plot deadline budget (simulated ms)
  recover                rebuild the pane layout from the session journal
  refresh                re-extract stale panes against the live link
  vrefresh <pane>        re-plot a pane through its cache: unchanged
                         boxes are adopted, written-to boxes rebuilt
  vprof on | off         enable/disable tracing and metrics collection
  vprof report           profile table, counters, histogram quantiles
  vprof export <file>    write buffered spans as Chrome trace JSON
  vverify <pane>         run the structural sanitizer on a pane; suspect
                         boxes gain [SUSPECT:<law>] tags in later shows
  figures                list library figures
  save <file> / quit|exit
|}

let repl_cmd =
  let doc = "Interactive session (a poor man's GDB prompt with v-commands)." in
  let run seed iters =
    let s = boot_session seed iters in
    Printf.printf "visualinux interactive session — %d tasks live. Type 'help'.\n"
      (List.length (Kstate.all_tasks s.Visualinux.kernel));
    (* Typed command boundary: every branch yields (unit, string) result,
       so a bad pane id / malformed number / refine on a closed pane is a
       printed error, never an exception unwinding the session. *)
    let ( let* ) = Result.bind in
    let pane_of str =
      match int_of_string_opt str with
      | None -> Error (Printf.sprintf "%S is not a pane id" str)
      | Some id -> (
          match Panel.pane_opt s.Visualinux.panel id with
          | None -> Error (Printf.sprintf "no pane %d (try 'panes')" id)
          | Some p -> Ok p)
    in
    let int_of str what =
      match int_of_string_opt str with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%S is not %s" str what)
    in
    let float_of str what =
      match float_of_string_opt str with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%S is not %s" str what)
    in
    let script_of fig =
      match Scripts.find fig with
      | Some sc -> Ok sc
      | None -> Error (Printf.sprintf "unknown figure %s (try 'figures')" fig)
    in
    let with_link f =
      match Target.transport s.Visualinux.target with
      | Some tr -> f tr
      | None -> Error "no transport attached"
    in
    let exec words : (unit, string) result =
      match words with
      | [] -> Ok ()
      | [ "help" ] ->
          print_string repl_help;
          Ok ()
      | [ "figures" ] ->
          List.iter
            (fun sc -> Printf.printf "  %-12s %s\n" sc.Scripts.fig sc.Scripts.descr)
            Scripts.table2;
          Ok ()
      | [ "panes" ] ->
          List.iter
            (fun id ->
              let p = Panel.pane s.Visualinux.panel id in
              Printf.printf "  pane %d: %s (%d boxes)%s\n" id
                (match p.Panel.kind with
                | Panel.Primary _ -> "primary"
                | Panel.Secondary _ -> "secondary")
                (Vgraph.box_count p.Panel.graph)
                (if p.Panel.stale then " [STALE]" else ""))
            (Panel.pane_ids s.Visualinux.panel);
          Ok ()
      | "vplot" :: "auto" :: ty :: rest ->
          let expr = String.concat " " rest in
          let pane, res, _ = Visualinux.vplot_auto s ~typ:ty ~expr in
          Printf.printf "pane %d: %d boxes\n" pane.Panel.pid
            (Vgraph.box_count res.Viewcl.graph);
          Ok ()
      | [ "vplot"; fig ] ->
          let* sc = script_of fig in
          let pane, _, stats = Visualinux.plot_figure s sc in
          (match Visualinux.render_pane s pane.Panel.pid with
          | Some out -> print_string out
          | None -> ());
          Printf.printf "pane %d: %d boxes, %d reads, %d spans, %.1f ms\n" pane.Panel.pid
            stats.Visualinux.boxes stats.Visualinux.reads stats.Visualinux.spans
            stats.Visualinux.wall_ms;
          Ok ()
      | "vctrl" :: "ql" :: pane :: rest ->
          let* p = pane_of pane in
          let n = Panel.refine s.Visualinux.panel ~at:p.Panel.pid (String.concat " " rest) in
          Printf.printf "%d boxes updated\n" n;
          Ok ()
      | [ "vctrl"; "split"; pane; d; fig ] -> (
          let* p = pane_of pane in
          let* dir =
            match d with
            | "h" -> Ok `Horizontal
            | "v" -> Ok `Vertical
            | _ -> Error (Printf.sprintf "%S is not h or v" d)
          in
          let* sc = script_of fig in
          match
            Visualinux.vctrl s
              (Visualinux.Split { pane = p.Panel.pid; dir; program = sc.Scripts.source })
          with
          | Visualinux.Opened id ->
              Printf.printf "pane %d opened\n" id;
              Ok ()
          | _ -> Error "unexpected vctrl result")
      | "vctrl" :: "select" :: pane :: boxes -> (
          let* p = pane_of pane in
          let* ids =
            List.fold_left
              (fun acc b ->
                let* acc = acc in
                let* id = int_of b "a box id" in
                Ok (id :: acc))
              (Ok []) boxes
          in
          match
            Visualinux.vctrl s
              (Visualinux.Select { pane = p.Panel.pid; boxes = List.rev ids })
          with
          | Visualinux.Opened id ->
              Printf.printf "pane %d opened\n" id;
              Ok ()
          | _ -> Error "unexpected vctrl result")
      | [ "vctrl"; "focus"; addr ] ->
          let* a = int_of addr "an address" in
          let hits = Panel.focus s.Visualinux.panel ~addr:a in
          List.iter (fun (pid, bid) -> Printf.printf "  pane %d: box #%d\n" pid bid) hits;
          if hits = [] then print_endline "  (not found)";
          Ok ()
      | [ "vctrl"; "close"; pane ] ->
          let* p = pane_of pane in
          Panel.close s.Visualinux.panel p.Panel.pid;
          print_endline "closed";
          Ok ()
      | "vchat" :: pane :: rest ->
          let* p = pane_of pane in
          let prog, n = Visualinux.vchat s ~pane:p.Panel.pid (String.concat " " rest) in
          Printf.printf "%s\n%d boxes updated\n" prog n;
          Ok ()
      | [ "show"; pane ] | [ "show"; pane; "ascii" ] -> (
          let* p = pane_of pane in
          match Visualinux.render_pane s p.Panel.pid with
          | Some out ->
              print_string out;
              Ok ()
          | None -> Error (Printf.sprintf "no pane %d" p.Panel.pid))
      | [ "show"; pane; "dot" ] ->
          let* p = pane_of pane in
          print_string (Render.dot p.Panel.graph);
          Ok ()
      | [ "show"; pane; "svg" ] ->
          let* p = pane_of pane in
          print_string (Render.svg p.Panel.graph);
          Ok ()
      | [ "show"; pane; "json" ] ->
          let* p = pane_of pane in
          print_string (Vgraph.to_json p.Panel.graph);
          Ok ()
      | [ "link" ] ->
          with_link (fun tr ->
              print_endline (Render.transport_line tr);
              Ok ())
      | [ "link"; "down" ] ->
          with_link (fun tr ->
              Transport.disconnect tr;
              Panel.mark_all_stale s.Visualinux.panel;
              print_endline "link down — panes are stale until 'recover'";
              Ok ())
      | [ "link"; "up" ] ->
          with_link (fun tr ->
              Transport.reconnect tr;
              print_endline (Render.transport_line tr);
              Ok ())
      | [ "link"; "rate"; r ] ->
          with_link (fun tr ->
              let* rate = float_of r "a fault rate" in
              Transport.set_faults tr (Transport.faults_of_rate rate);
              Ok ())
      | [ "link"; "deadline"; "off" ] ->
          with_link (fun tr ->
              Transport.set_deadline tr None;
              Ok ())
      | [ "link"; "deadline"; ms ] ->
          with_link (fun tr ->
              let* d = float_of ms "a deadline in ms" in
              Transport.set_deadline tr (Some d);
              Ok ())
      | [ "recover" ] ->
          let stale = Visualinux.recover s in
          Printf.printf "recovered %d panes (%d stale)\n"
            (List.length (Panel.pane_ids s.Visualinux.panel))
            stale;
          Ok ()
      | [ "refresh" ] ->
          let ids = Visualinux.refresh_stale s in
          Printf.printf "refreshed %d panes\n" (List.length ids);
          Ok ()
      | [ "vrefresh"; pane ] -> (
          let* p = pane_of pane in
          match Visualinux.vrefresh s ~pane:p.Panel.pid with
          | None -> Error (Printf.sprintf "pane %d cannot refresh (secondary, or link down)" p.Panel.pid)
          | Some (res, stats) ->
              Printf.printf
                "pane %d: %d boxes in %.2f ms — %d adopted, %d rebuilt, %d new\n"
                p.Panel.pid stats.Visualinux.boxes stats.Visualinux.wall_ms
                stats.Visualinux.cache_hits stats.Visualinux.cache_invalidated
                stats.Visualinux.cache_misses;
              (match res.Viewcl.rebuilt with
              | [] -> ()
              | ids ->
                  Printf.printf "  rebuilt boxes: %s\n"
                    (String.concat ", " (List.map (Printf.sprintf "#%d") ids)));
              Ok ())
      | [ "vprof"; "on" ] | [ "vprof"; "off" ] ->
          let enable = words = [ "vprof"; "on" ] in
          (match
             Visualinux.vprof s (if enable then Visualinux.Prof_on else Visualinux.Prof_off)
           with
          | Visualinux.Prof_state b ->
              Printf.printf "tracing %s\n" (if b then "on" else "off")
          | _ -> ());
          Ok ()
      | [ "vprof"; "report" ] ->
          (match Visualinux.vprof s Visualinux.Prof_report with
          | Visualinux.Prof_text txt -> print_string txt
          | _ -> ());
          Ok ()
      | [ "vprof"; "export"; file ] ->
          (match Visualinux.vprof s (Visualinux.Prof_export file) with
          | Visualinux.Prof_written f ->
              Printf.printf "trace written to %s (%d events)\n" f (Obs.event_count ())
          | _ -> ());
          Ok ()
      | "vprof" :: _ -> Error "usage: vprof on|off|report|export <file>"
      | [ "vverify"; pane ] -> (
          let* p = pane_of pane in
          match Visualinux.vverify s ~pane:p.Panel.pid with
          | None -> Error (Printf.sprintf "no pane %d" p.Panel.pid)
          | Some [] ->
              Printf.printf "pane %d: all structures pass (%d boxes checked)\n" p.Panel.pid
                (Vgraph.box_count p.Panel.graph);
              Ok ()
          | Some verdicts ->
              List.iter
                (fun v -> Printf.printf "  %s\n" (Sanity.verdict_to_string v))
                verdicts;
              Printf.printf "pane %d: %d suspect structure(s)\n" p.Panel.pid
                (List.length verdicts);
              Ok ())
      | "vverify" :: _ -> Error "usage: vverify <pane>"
      | [ "save"; file ] ->
          let oc = open_out file in
          output_string oc (Panel.to_json s.Visualinux.panel);
          close_out oc;
          Printf.printf "session saved to %s\n" file;
          Ok ()
      | w :: _ -> Error (Printf.sprintf "unknown command %S (try 'help')" w)
    in
    let rec loop () =
      print_string "(visualinux) ";
      match input_line stdin with
      | exception End_of_file -> ()
      | line -> (
          let words =
            String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
          in
          match words with
          | [ "quit" ] | [ "exit" ] -> ()
          | _ ->
              (* last-resort net: domain errors are typed above, but a
                 malformed ViewCL/ViewQL program still raises from the
                 parsers — keep those inside the loop too *)
              (match
                 try exec words with
                 | Viewcl.Error m | Viewql.Error m -> Error m
                 | Vchat.Cannot_synthesize _ -> Error "cannot synthesize ViewQL"
                 | Failure m | Invalid_argument m -> Error m
                 | Not_found -> Error "not found"
               with
              | Ok () -> ()
              | Error m -> Printf.printf "error: %s\n" m);
              loop ())
    in
    loop ();
    print_endline "bye."
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ seed_arg $ iters_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "Visualinux-style visual debugging of a simulated Linux kernel" in
  let info = Cmd.info "visualinux" ~version:"1.0.0" ~doc in
  Cmd.group info [ figures_cmd; plot_cmd; plot_file_cmd; query_cmd; chat_cmd; repl_cmd ]

let () = exit (Cmd.eval main_cmd)
