(* The visualinux command-line front-end.

   Boots the simulated kernel, runs the evaluation workload, and executes
   v-commands — either one-shot via subcommands or interactively via a
   GDB-style prompt.

   Examples:
     visualinux figures                 # list the Table 2 script library
     visualinux plot 7-1                # render a figure as ASCII
     visualinux plot 9-2 --format dot   # ... or Graphviz/SVG/JSON
     visualinux chat 7-1 "display view \"sched\" of all processes"
     visualinux query 3-4 'a = SELECT task_struct FROM * WHERE pid > 5
                           UPDATE a WITH collapsed: true'
     visualinux repl                    # interactive session
*)

open Cmdliner

let boot_session seed iters =
  let kernel = Kstate.boot () in
  let w = Workload.create ~seed kernel in
  Workload.run ~iters w;
  (* A fault-free local link by default: pure latency accounting until
     the user turns faults on with `link rate`. *)
  let transport = Transport.create Transport.qemu_local in
  Visualinux.attach ~transport kernel

(* common options *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")

let iters_arg =
  Arg.(value & opt int 3 & info [ "iters" ] ~docv:"N" ~doc:"Workload iterations.")

let format_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("ascii", `Ascii); ("dot", `Dot); ("svg", `Svg); ("json", `Json);
             ("html", `Html) ])
        `Ascii
    & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output format: ascii, dot, svg, json or html.")

let render fmt graph =
  match fmt with
  | `Ascii -> Render.ascii graph
  | `Dot -> Render.dot graph
  | `Svg -> Render.svg graph
  | `Json -> Vgraph.to_json graph
  | `Html -> Render_html.html graph

let fig_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FIG" ~doc:"Figure id from the script library (e.g. 7-1, 9-2, socketconn).")

let find_script fig =
  match Scripts.find fig with
  | Some sc -> Ok sc
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown figure %S; try one of: %s" fig
             (String.concat ", " (List.map (fun s -> s.Scripts.fig) Scripts.table2))))

(* ------------------------------------------------------------------ *)
(* figures *)

let figures_cmd =
  let doc = "List the ViewCL script library (the Table 2 figures)." in
  let run () =
    Printf.printf "%-12s %-45s %4s %s\n" "id" "description" "LoC" "delta";
    List.iter
      (fun (sc : Scripts.script) ->
        Printf.printf "%-12s %-45s %4d %s\n" sc.Scripts.fig sc.Scripts.descr (Scripts.loc sc)
          (Scripts.delta_glyph sc.Scripts.delta))
      Scripts.table2
  in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* plot *)

let plot_cmd =
  let doc = "Evaluate a library ViewCL program (vplot) and render the result." in
  let run seed iters fmt fig =
    match find_script fig with
    | Error e -> Error e
    | Ok sc ->
        let s = boot_session seed iters in
        let _, res, stats = Visualinux.plot_figure s sc in
        print_string (render fmt res.Viewcl.graph);
        Printf.eprintf "[%d boxes, %d target reads, %.2f ms]\n" stats.Visualinux.boxes
          stats.Visualinux.reads stats.Visualinux.wall_ms;
        Ok ()
  in
  Cmd.v
    (Cmd.info "plot" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg))

(* ------------------------------------------------------------------ *)
(* plot-file: run a user-supplied .vcl program *)

let plot_file_cmd =
  let doc = "Evaluate a ViewCL program from a file (vplot)." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"ViewCL source file.")
  in
  let run seed iters fmt file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let s = boot_session seed iters in
    match Visualinux.vplot s ~title:file src with
    | _, res, _ ->
        print_string (render fmt res.Viewcl.graph);
        Ok ()
    | exception Viewcl.Error m -> Error (`Msg m)
  in
  Cmd.v
    (Cmd.info "plot-file" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ file_arg))

(* ------------------------------------------------------------------ *)
(* query: plot a figure then apply ViewQL (vctrl) *)

let query_cmd =
  let doc = "Plot a figure, then apply a ViewQL program to it (vctrl)." in
  let ql_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"VIEWQL" ~doc:"ViewQL program.")
  in
  let run seed iters fmt fig ql =
    match find_script fig with
    | Error e -> Error e
    | Ok sc -> (
        let s = boot_session seed iters in
        let pane, res, _ = Visualinux.plot_figure s sc in
        match Visualinux.vctrl s (Visualinux.Apply { pane = pane.Panel.pid; viewql = ql }) with
        | Visualinux.Updated n ->
            Printf.eprintf "[%d boxes updated]\n" n;
            print_string (render fmt res.Viewcl.graph);
            Ok ()
        | _ -> Error (`Msg "unexpected vctrl result")
        | exception Viewql.Error m -> Error (`Msg m))
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg $ ql_arg))

(* ------------------------------------------------------------------ *)
(* chat: plot a figure then refine with natural language (vchat) *)

let chat_cmd =
  let doc = "Plot a figure, then refine it with a natural-language request (vchat)." in
  let nl_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"TEXT" ~doc:"Natural-language refinement.")
  in
  let run seed iters fmt fig text =
    match find_script fig with
    | Error e -> Error e
    | Ok sc -> (
        let s = boot_session seed iters in
        let pane, res, _ = Visualinux.plot_figure s sc in
        match Visualinux.vchat s ~pane:pane.Panel.pid text with
        | prog, n ->
            Printf.eprintf "synthesized ViewQL:\n%s\n[%d boxes updated]\n" prog n;
            print_string (render fmt res.Viewcl.graph);
            Ok ()
        | exception Vchat.Cannot_synthesize _ ->
            Error (`Msg "could not synthesize a ViewQL program from that description"))
  in
  Cmd.v
    (Cmd.info "chat" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg $ nl_arg))

(* ------------------------------------------------------------------ *)
(* repl *)

let repl_help =
  {|v-commands (all run through the multi-session server: each session has
its own fault config, budget, counters and pane layout, multiplexed over
the shared target link — a refusal prints a typed reason, never a crash):
  vplot <fig>            plot a library figure into a new pane
  vplot auto <type> <C-expr>
                         synthesize a trivial ViewCL program for a struct
  vctrl ql <pane> <viewql ...>    apply ViewQL to a pane
  vctrl split <pane> <h|v> <fig>  split a pane with a new figure
  vctrl select <pane> <box-ids..> pick boxes into a secondary pane
  vctrl focus <hex-addr>          find an object in all panes
  vctrl close <pane>              close a pane
  vchat <pane> <text>    natural language -> ViewQL -> apply
  show <pane> [ascii|dot|svg|json]
  panes                  list panes ([STALE] = awaiting re-extraction)
  session new <name> [rate]       open a session (optional fault rate)
  session list           sessions, current marked with *
  session use <id>       switch the prompt to another session
  session close <id>     close a session (not the last one)
  session budget reads <n|off>    per-epoch read budget, this session
  session budget ms <n|off>       per-epoch wire-time budget (sim ms)
  session budget retries <n|off>  retry-token bucket (1 earned per op)
  session weight <n>     fair-admission priority (higher sheds later)
  session epoch          open a fresh budget/cache-stat epoch
  server status          targets, health/EWMA, breaker state, sessions
  server save <file>     checksummed durable image of the whole fleet
  server recover <file>  fsck + replay a durable image (or legacy JSON
                         snapshot) into this server; corrupt sessions
                         come back salvaged/quarantined, never a crash
  server fsck <file>     dry-run scan: checksum report + salvage plan
  vtop [k]               live fleet dashboard: target health, session
                         vitals, SLO burn rates, k slowest traces+links
  link                   show transport health
  link down | up         force-disconnect / reconnect the target link
  link rate <r>          THIS session's fault rates: stalls+drops at r,
                         disconnects r/20 (other sessions are untouched)
  link deadline <ms|off> per-plot deadline budget, this session (sim ms)
  recover                replay this session's journal (pane ids return)
  refresh                re-extract stale panes against the live link
  vrefresh <pane>        re-plot a pane through its cache: unchanged
                         boxes are adopted, written-to boxes rebuilt
  vprof on | off         enable/disable tracing and metrics collection
  vprof report           profile table, counters, histogram quantiles
  vprof export <file>    write buffered spans as Chrome trace JSON
                         (span/trace ids + flow-event causal links)
  vprof export --metrics <file>   write the metrics registry as JSON
  vprof export --prom <file>      write a Prometheus text scrape
  vverify <pane>         run the structural sanitizer on a pane; suspect
                         boxes gain [SUSPECT:<law>] tags in later shows
  figures                list library figures
  save <file> / quit|exit
|}

let repl_cmd =
  let doc = "Interactive session (a poor man's GDB prompt with v-commands)." in
  let run seed iters =
    let kernel = Kstate.boot () in
    let w = Workload.create ~seed kernel in
    Workload.run ~iters w;
    (* One multi-session server over the booted kernel: every repl
       session shares the "wire" target (link, breaker, read cache) but
       keeps its own fault config, budget, counters and pane layout. *)
    let srv = Session.create kernel in
    Session.add_target srv ~transport:(Transport.create Transport.qemu_local) "wire";
    let cur =
      ref
        (match Session.open_session ~target:"wire" srv "main" with
        | Session.Admitted sid -> sid
        | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
    in
    Printf.printf "visualinux interactive session — %d tasks live. Type 'help'.\n"
      (List.length (Kstate.all_tasks kernel));
    (* Typed command boundary: every branch yields (unit, string) result,
       so a bad pane id / malformed number / refine on a closed pane is a
       printed error, never an exception unwinding the session.  Server
       refusals (capacity, budget, quarantine) surface the same way. *)
    let ( let* ) = Result.bind in
    let admit = function
      | Session.Admitted x -> Ok x
      | Session.Rejected { reason } -> Error (Session.reason_to_string reason)
    in
    let exec words : (unit, string) result =
      let s = Option.get (Session.vis srv !cur) in
      let pane_of str =
      match int_of_string_opt str with
      | None -> Error (Printf.sprintf "%S is not a pane id" str)
      | Some id -> (
          match Panel.pane_opt s.Visualinux.panel id with
          | None -> Error (Printf.sprintf "no pane %d (try 'panes')" id)
          | Some p -> Ok p)
    in
    let int_of str what =
      match int_of_string_opt str with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%S is not %s" str what)
    in
    let float_of str what =
      match float_of_string_opt str with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%S is not %s" str what)
    in
    let script_of fig =
      match Scripts.find fig with
      | Some sc -> Ok sc
      | None -> Error (Printf.sprintf "unknown figure %s (try 'figures')" fig)
    in
    let with_link f =
      match Target.transport s.Visualinux.target with
      | Some tr -> f tr
      | None -> Error "no transport attached"
    in
      match words with
      | [] -> Ok ()
      | [ "help" ] ->
          print_string repl_help;
          Ok ()
      | [ "figures" ] ->
          List.iter
            (fun sc -> Printf.printf "  %-12s %s\n" sc.Scripts.fig sc.Scripts.descr)
            Scripts.table2;
          Ok ()
      | [ "panes" ] ->
          List.iter
            (fun id ->
              let p = Panel.pane s.Visualinux.panel id in
              Printf.printf "  pane %d: %s (%d boxes)%s\n" id
                (match p.Panel.kind with
                | Panel.Primary _ -> "primary"
                | Panel.Secondary _ -> "secondary")
                (Vgraph.box_count p.Panel.graph)
                (if p.Panel.stale then " [STALE]" else ""))
            (Panel.pane_ids s.Visualinux.panel);
          Ok ()
      | "vplot" :: "auto" :: ty :: rest ->
          let expr = String.concat " " rest in
          let pane, res, _ = Visualinux.vplot_auto s ~typ:ty ~expr in
          Printf.printf "pane %d: %d boxes\n" pane.Panel.pid
            (Vgraph.box_count res.Viewcl.graph);
          Ok ()
      | [ "vplot"; fig ] ->
          let* sc = script_of fig in
          let* pane, _, stats =
            admit (Session.vplot srv !cur ~title:sc.Scripts.fig sc.Scripts.source)
          in
          (match Visualinux.render_pane s pane.Panel.pid with
          | Some out -> print_string out
          | None -> ());
          Printf.printf "pane %d: %d boxes, %d reads, %d spans, %.1f ms\n" pane.Panel.pid
            stats.Visualinux.boxes stats.Visualinux.reads stats.Visualinux.spans
            stats.Visualinux.wall_ms;
          Ok ()
      | "vctrl" :: "ql" :: pane :: rest -> (
          let* p = pane_of pane in
          let* r =
            admit
              (Session.vctrl srv !cur
                 (Visualinux.Apply { pane = p.Panel.pid; viewql = String.concat " " rest }))
          in
          match r with
          | Visualinux.Updated n ->
              Printf.printf "%d boxes updated\n" n;
              Ok ()
          | _ -> Error "unexpected vctrl result")
      | [ "vctrl"; "split"; pane; d; fig ] -> (
          let* p = pane_of pane in
          let* dir =
            match d with
            | "h" -> Ok `Horizontal
            | "v" -> Ok `Vertical
            | _ -> Error (Printf.sprintf "%S is not h or v" d)
          in
          let* sc = script_of fig in
          let* r =
            admit
              (Session.vctrl srv !cur
                 (Visualinux.Split { pane = p.Panel.pid; dir; program = sc.Scripts.source }))
          in
          match r with
          | Visualinux.Opened id ->
              Printf.printf "pane %d opened\n" id;
              Ok ()
          | _ -> Error "unexpected vctrl result")
      | "vctrl" :: "select" :: pane :: boxes -> (
          let* p = pane_of pane in
          let* ids =
            List.fold_left
              (fun acc b ->
                let* acc = acc in
                let* id = int_of b "a box id" in
                Ok (id :: acc))
              (Ok []) boxes
          in
          let* r =
            admit
              (Session.vctrl srv !cur
                 (Visualinux.Select { pane = p.Panel.pid; boxes = List.rev ids }))
          in
          match r with
          | Visualinux.Opened id ->
              Printf.printf "pane %d opened\n" id;
              Ok ()
          | _ -> Error "unexpected vctrl result")
      | [ "vctrl"; "focus"; addr ] ->
          let* a = int_of addr "an address" in
          let hits = Panel.focus s.Visualinux.panel ~addr:a in
          List.iter (fun (pid, bid) -> Printf.printf "  pane %d: box #%d\n" pid bid) hits;
          if hits = [] then print_endline "  (not found)";
          Ok ()
      | [ "vctrl"; "close"; pane ] ->
          let* p = pane_of pane in
          let* _ = admit (Session.vctrl srv !cur (Visualinux.Close { pane = p.Panel.pid })) in
          print_endline "closed";
          Ok ()
      | "vchat" :: pane :: rest ->
          let* p = pane_of pane in
          let prog, n = Visualinux.vchat s ~pane:p.Panel.pid (String.concat " " rest) in
          Printf.printf "%s\n%d boxes updated\n" prog n;
          Ok ()
      | [ "show"; pane ] | [ "show"; pane; "ascii" ] -> (
          let* p = pane_of pane in
          match Visualinux.render_pane s p.Panel.pid with
          | Some out ->
              print_string out;
              Ok ()
          | None -> Error (Printf.sprintf "no pane %d" p.Panel.pid))
      | [ "show"; pane; "dot" ] ->
          let* p = pane_of pane in
          print_string (Render.dot p.Panel.graph);
          Ok ()
      | [ "show"; pane; "svg" ] ->
          let* p = pane_of pane in
          print_string (Render.svg p.Panel.graph);
          Ok ()
      | [ "show"; pane; "json" ] ->
          let* p = pane_of pane in
          print_string (Vgraph.to_json p.Panel.graph);
          Ok ()
      | [ "link" ] ->
          with_link (fun tr ->
              print_endline (Render.transport_line tr);
              Ok ())
      | [ "link"; "down" ] ->
          with_link (fun tr ->
              Transport.disconnect tr;
              Panel.mark_all_stale s.Visualinux.panel;
              print_endline "link down — panes are stale until 'recover'";
              Ok ())
      | [ "link"; "up" ] ->
          with_link (fun tr ->
              Transport.reconnect tr;
              print_endline (Render.transport_line tr);
              Ok ())
      | [ "link"; "rate"; r ] ->
          (* per-session: only this session's traffic runs under the
             faults; the link itself (and everyone else) is untouched *)
          let* rate = float_of r "a fault rate" in
          Session.set_faults srv !cur (Transport.faults_of_rate rate);
          Printf.printf "session %d traffic now at fault rate %.3f\n" !cur rate;
          Ok ()
      | [ "link"; "deadline"; "off" ] ->
          let b = Option.value (Session.budget_of srv !cur) ~default:Session.unlimited in
          Session.set_budget srv !cur { b with Session.plot_deadline_ms = None };
          Ok ()
      | [ "link"; "deadline"; ms ] ->
          let* d = float_of ms "a deadline in ms" in
          let b = Option.value (Session.budget_of srv !cur) ~default:Session.unlimited in
          Session.set_budget srv !cur { b with Session.plot_deadline_ms = Some d };
          Ok ()
      | [ "recover" ] ->
          let* stale = admit (Session.recover_session srv !cur) in
          Printf.printf "recovered %d panes (%d stale)\n"
            (List.length (Panel.pane_ids s.Visualinux.panel))
            stale;
          Ok ()
      | [ "refresh" ] ->
          let* ids = admit (Session.refresh_stale srv !cur) in
          Printf.printf "refreshed %d panes\n" (List.length ids);
          Ok ()
      | [ "vrefresh"; pane ] -> (
          let* p = pane_of pane in
          let* r = admit (Session.vrefresh srv !cur ~pane:p.Panel.pid) in
          match r with
          | None -> Error (Printf.sprintf "pane %d cannot refresh (secondary, or link down)" p.Panel.pid)
          | Some (res, stats) ->
              Printf.printf
                "pane %d: %d boxes in %.2f ms — %d adopted, %d rebuilt, %d new\n"
                p.Panel.pid stats.Visualinux.boxes stats.Visualinux.wall_ms
                stats.Visualinux.cache_hits stats.Visualinux.cache_invalidated
                stats.Visualinux.cache_misses;
              (match res.Viewcl.rebuilt with
              | [] -> ()
              | ids ->
                  Printf.printf "  rebuilt boxes: %s\n"
                    (String.concat ", " (List.map (Printf.sprintf "#%d") ids)));
              Ok ())
      | [ "vprof"; "on" ] | [ "vprof"; "off" ] ->
          let enable = words = [ "vprof"; "on" ] in
          (match
             Visualinux.vprof s (if enable then Visualinux.Prof_on else Visualinux.Prof_off)
           with
          | Visualinux.Prof_state b ->
              Printf.printf "tracing %s\n" (if b then "on" else "off")
          | _ -> ());
          Ok ()
      | [ "vprof"; "report" ] ->
          (match Visualinux.vprof s Visualinux.Prof_report with
          | Visualinux.Prof_text txt -> print_string txt
          | _ -> ());
          Ok ()
      | [ "vprof"; "export"; "--metrics"; file ] ->
          (match Visualinux.vprof s (Visualinux.Prof_export_metrics file) with
          | Visualinux.Prof_written f -> Printf.printf "metrics written to %s\n" f
          | _ -> ());
          Ok ()
      | [ "vprof"; "export"; "--prom"; file ] ->
          (match Visualinux.vprof s (Visualinux.Prof_export_prom file) with
          | Visualinux.Prof_written f -> Printf.printf "prometheus scrape written to %s\n" f
          | _ -> ());
          Ok ()
      | [ "vprof"; "export"; file ] ->
          (match Visualinux.vprof s (Visualinux.Prof_export file) with
          | Visualinux.Prof_written f ->
              Printf.printf "trace written to %s (%d events, %d links)\n" f
                (Obs.event_count ())
                (List.length (Obs.Trace.links ()))
          | _ -> ());
          Ok ()
      | "vprof" :: _ ->
          Error "usage: vprof on|off|report|export [--metrics|--prom] <file>"
      | [ "vverify"; pane ] -> (
          let* p = pane_of pane in
          match Visualinux.vverify s ~pane:p.Panel.pid with
          | None -> Error (Printf.sprintf "no pane %d" p.Panel.pid)
          | Some [] ->
              Printf.printf "pane %d: all structures pass (%d boxes checked)\n" p.Panel.pid
                (Vgraph.box_count p.Panel.graph);
              Ok ()
          | Some verdicts ->
              List.iter
                (fun v -> Printf.printf "  %s\n" (Sanity.verdict_to_string v))
                verdicts;
              Printf.printf "pane %d: %d suspect structure(s)\n" p.Panel.pid
                (List.length verdicts);
              Ok ())
      | "vverify" :: _ -> Error "usage: vverify <pane>"
      | [ "save"; file ] ->
          let oc = open_out file in
          output_string oc (Panel.to_json s.Visualinux.panel);
          close_out oc;
          Printf.printf "session saved to %s\n" file;
          Ok ()
      | [ "session"; "new"; name ] | [ "session"; "new"; name; _ ] ->
          let* faults =
            match words with
            | [ _; _; _; r ] ->
                let* rate = float_of r "a fault rate" in
                Ok (Transport.faults_of_rate rate)
            | _ -> Ok Transport.no_faults
          in
          let* sid = admit (Session.open_session ~faults ~target:"wire" srv name) in
          cur := sid;
          Printf.printf "session %d (%s) opened and selected\n" sid name;
          Ok ()
      | [ "session"; "list" ] ->
          List.iter
            (fun sid ->
              Printf.printf " %c %d %-10s plots %d, refreshes %d, rejections %d, faults %d\n"
                (if sid = !cur then '*' else ' ')
                sid
                (Option.value (Session.session_name srv sid) ~default:"?")
                (Session.counter srv sid "plots")
                (Session.counter srv sid "refreshes")
                (Session.counter srv sid "rejections")
                (Session.counter srv sid "faults"))
            (Session.session_ids srv);
          Ok ()
      | [ "session"; "use"; sid ] ->
          let* id = int_of sid "a session id" in
          if List.mem id (Session.session_ids srv) then begin
            cur := id;
            Ok ()
          end
          else Error (Printf.sprintf "no session %d (try 'session list')" id)
      | [ "session"; "close"; sid ] ->
          let* id = int_of sid "a session id" in
          let remaining = List.filter (fun x -> x <> id) (Session.session_ids srv) in
          if not (List.mem id (Session.session_ids srv)) then
            Error (Printf.sprintf "no session %d" id)
          else if remaining = [] then Error "cannot close the last session"
          else begin
            Session.close_session srv id;
            if !cur = id then cur := List.hd remaining;
            Printf.printf "session %d closed; now on %d\n" id !cur;
            Ok ()
          end
      | [ "session"; "budget"; "reads"; v ] ->
          let b = Option.value (Session.budget_of srv !cur) ~default:Session.unlimited in
          let* max_reads =
            if v = "off" then Ok None
            else
              let* n = int_of v "a read count" in
              Ok (Some n)
          in
          Session.set_budget srv !cur { b with Session.max_reads };
          Ok ()
      | [ "session"; "budget"; "ms"; v ] ->
          let b = Option.value (Session.budget_of srv !cur) ~default:Session.unlimited in
          let* max_sim_ms =
            if v = "off" then Ok None
            else
              let* f = float_of v "a wire-time budget in ms" in
              Ok (Some f)
          in
          Session.set_budget srv !cur { b with Session.max_sim_ms };
          Ok ()
      | [ "session"; "budget"; "retries"; v ] ->
          let b = Option.value (Session.budget_of srv !cur) ~default:Session.unlimited in
          let* retry_burst =
            if v = "off" then Ok None
            else
              let* n = int_of v "a retry-token count" in
              Ok (Some n)
          in
          Session.set_budget srv !cur { b with Session.retry_burst };
          Ok ()
      | [ "session"; "weight"; v ] ->
          let* w = int_of v "a priority weight" in
          Session.set_weight srv !cur w;
          Printf.printf "session %d weight %d (degrades %s under a sick target)\n" !cur
            (Session.weight_of srv !cur)
            (if Session.weight_of srv !cur > 1 then "later" else "first");
          Ok ()
      | [ "session"; "epoch" ] ->
          Session.begin_epoch srv !cur;
          Printf.printf "session %d: fresh epoch (budgets and cache stats reset)\n" !cur;
          Ok ()
      | "session" :: _ ->
          Error
            "usage: session new <name> [rate] | list | use <id> | close <id> | budget \
             reads|ms|retries <n|off> | weight <n> | epoch"
      | [ "server"; "status" ] ->
          print_string (Session.status srv);
          Ok ()
      | [ "server"; "save"; file ] ->
          Durable.write_file file (Session.fleet_image srv);
          Printf.printf "durable fleet image written to %s\n" file;
          Ok ()
      | [ "server"; "recover"; file ] -> (
          match Durable.read_file file with
          | exception Sys_error e -> Error e
          | image when String.length image > 0 && image.[0] = '{' ->
              (* a legacy JSON fleet snapshot from an older `server save` *)
              List.iter
                (function
                  | Session.Admitted (sid, stale) ->
                      Printf.printf "session %d replayed (%d stale panes)\n" sid stale
                  | Session.Rejected { reason } ->
                      Printf.printf "refused: %s\n" (Session.reason_to_string reason))
                (Session.recover_fleet srv image);
              Ok ()
          | image ->
              print_string
                (Session.recovery_to_string (Session.recover_durable srv image));
              Ok ())
      | [ "server"; "fsck"; file ] -> (
          (* dry run: scan + plan, mutate nothing *)
          match Durable.read_file file with
          | exception Sys_error e -> Error e
          | image ->
              let report, sessions = Session.fsck_image image in
              Printf.printf "%s\n" (Durable.report_to_string report);
              List.iter
                (fun (s : Session.srecovery) ->
                  Printf.printf "  would recover %-12s on %-8s as %s (%d ops)\n"
                    (Printf.sprintf "%S" s.Session.rname)
                    s.Session.rtarget
                    (match s.Session.rsalvage with
                    | Session.Replayed -> "replayed"
                    | Session.Salvaged { dropped } ->
                        Printf.sprintf "salvaged (%d ops dropped)" dropped
                    | Session.Quarantined_stale -> "quarantined [STALE]")
                    s.Session.rops)
                sessions;
              Ok ())
      | "server" :: _ ->
          Error "usage: server status | save <file> | recover <file> | fsck <file>"
      | "vtop" :: rest -> (
          match rest with
          | [] ->
              Session.register_slos srv;
              print_string (Session.vtop srv);
              Ok ()
          | [ k ] -> (
              match int_of_string_opt k with
              | Some top when top >= 0 ->
                  Session.register_slos srv;
                  print_string (Session.vtop ~top srv);
                  Ok ()
              | _ -> Error "usage: vtop [k]")
          | _ -> Error "usage: vtop [k]")
      | w :: _ -> Error (Printf.sprintf "unknown command %S (try 'help')" w)
    in
    let rec loop () =
      Printf.printf "(visualinux:%s) "
        (Option.value (Session.session_name srv !cur) ~default:"?");
      match input_line stdin with
      | exception End_of_file -> ()
      | line -> (
          let words =
            String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
          in
          match words with
          | [ "quit" ] | [ "exit" ] -> ()
          | _ ->
              (* last-resort net: domain errors are typed above, but a
                 malformed ViewCL/ViewQL program still raises from the
                 parsers — keep those inside the loop too *)
              (match
                 try exec words with
                 | Viewcl.Error m | Viewql.Error m -> Error m
                 | Vchat.Cannot_synthesize _ -> Error "cannot synthesize ViewQL"
                 | Failure m | Invalid_argument m -> Error m
                 | Not_found -> Error "not found"
               with
              | Ok () -> ()
              | Error m -> Printf.printf "error: %s\n" m);
              loop ())
    in
    loop ();
    print_endline "bye."
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ seed_arg $ iters_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "Visualinux-style visual debugging of a simulated Linux kernel" in
  let info = Cmd.info "visualinux" ~version:"1.0.0" ~doc in
  Cmd.group info [ figures_cmd; plot_cmd; plot_file_cmd; query_cmd; chat_cmd; repl_cmd ]

let () = exit (Cmd.eval main_cmd)
