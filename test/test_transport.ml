(* The resilient remote-target transport (ISSUE 2): deterministic
   backoff, bounded retries, the circuit breaker's zero-read guarantee,
   the per-plot deadline budget, and crash-safe panel sessions — after
   a disconnect mid-extraction, replaying the journal reproduces the
   pre-crash panes (same pane ids, same box ids). *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  (k, Visualinux.attach k)

let drop_everything =
  { Transport.stall_rate = 0.; drop_rate = 1.0; disconnect_rate = 0. }

(* ------------------------------------------------------------------ *)
(* Backoff *)

let backoff_deterministic =
  QCheck.Test.make ~name:"backoff schedule: deterministic, jitter-bounded, capped"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 12))
    (fun (seed, attempt) ->
      let p = Transport.default_policy in
      let b1 = Transport.backoff_ms p ~seed ~attempt in
      let b2 = Transport.backoff_ms p ~seed ~attempt in
      let raw = p.Transport.backoff_base_ms *. (p.Transport.backoff_factor ** float_of_int attempt) in
      let capped = Float.min raw p.Transport.backoff_max_ms in
      b1 = b2
      && b1 >= (capped *. (1. -. p.Transport.jitter)) -. 1e-9
      && b1 <= (capped *. (1. +. p.Transport.jitter)) +. 1e-9)

let test_backoff_schedule_replays () =
  (* the whole schedule, not just one delay, is a function of the seed *)
  let sched seed =
    List.init 8 (fun a -> Transport.backoff_ms Transport.default_policy ~seed ~attempt:a)
  in
  Alcotest.(check bool) "same seed, same schedule" true (sched 42 = sched 42);
  Alcotest.(check bool) "different seeds, different jitter" true (sched 42 <> sched 43)

(* ------------------------------------------------------------------ *)
(* Retry cap *)

let retries_never_exceed_cap =
  QCheck.Test.make ~name:"retries never exceed the cap (and a refused fetch never reads)"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 5))
    (fun (seed, max_retries) ->
      let policy =
        { Transport.default_policy with Transport.max_retries; breaker_threshold = 1000 }
      in
      let tr = Transport.create ~seed ~policy ~faults:drop_everything Transport.qemu_local in
      let calls = ref 0 in
      let r = Transport.fetch tr ~bytes:8 (fun () -> incr calls) in
      let sn = Transport.snapshot tr in
      r = Error Transport.Retries_exhausted
      && !calls = 0
      && sn.Transport.attempts = max_retries + 1
      && sn.Transport.retries = max_retries)

let retry_cap_under_partial_loss =
  QCheck.Test.make ~name:"per-fetch attempts <= cap+1 at any drop rate" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 99))
    (fun (seed, pct) ->
      let tr =
        Transport.create ~seed
          ~policy:{ Transport.default_policy with Transport.breaker_threshold = 1000 }
          ~faults:{ Transport.stall_rate = 0.; drop_rate = float_of_int pct /. 100.; disconnect_rate = 0. }
          Transport.qemu_local
      in
      let cap = Transport.default_policy.Transport.max_retries in
      let ok = ref true in
      for _ = 1 to 50 do
        let before = (Transport.snapshot tr).Transport.attempts in
        ignore (Transport.fetch tr ~bytes:8 (fun () -> ()));
        let spent = (Transport.snapshot tr).Transport.attempts - before in
        if spent < 1 || spent > cap + 1 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_zero_reads () =
  let policy =
    { Transport.default_policy with
      Transport.max_retries = 0; breaker_threshold = 3; breaker_cooldown_ms = 1e12 }
  in
  let tr = Transport.create ~seed:1 ~policy ~faults:drop_everything Transport.qemu_local in
  for _ = 1 to 3 do
    ignore (Transport.fetch tr ~bytes:8 (fun () -> ()))
  done;
  Alcotest.(check bool) "breaker tripped Open" true (Transport.breaker tr = Transport.Open);
  let sn0 = Transport.snapshot tr in
  let calls = ref 0 in
  for _ = 1 to 50 do
    match Transport.fetch tr ~bytes:8 (fun () -> incr calls) with
    | Error Transport.Breaker_open -> ()
    | _ -> Alcotest.fail "open breaker must refuse with Breaker_open"
  done;
  let sn1 = Transport.snapshot tr in
  Alcotest.(check int) "thunk never ran" 0 !calls;
  Alcotest.(check int) "zero wire attempts while open" sn0.Transport.attempts
    sn1.Transport.attempts;
  Alcotest.(check int) "all 50 short-circuited"
    (sn0.Transport.short_circuits + 50)
    sn1.Transport.short_circuits

let test_breaker_zero_kmem_reads () =
  (* same guarantee measured at the bottom of the stack: an open breaker
     means Kmem's read counter does not move *)
  let _, s = session () in
  let tgt = s.Visualinux.target in
  let policy =
    { Transport.default_policy with
      Transport.max_retries = 0; breaker_threshold = 2; breaker_cooldown_ms = 1e12 }
  in
  let tr = Transport.create ~seed:5 ~policy ~faults:drop_everything Transport.qemu_local in
  Target.set_transport tgt tr;
  let init = Option.get (Target.lookup_symbol tgt "init_task") in
  for _ = 1 to 2 do
    ignore (Target.as_int tgt (Target.member tgt init "pid"))
  done;
  Alcotest.(check bool) "breaker tripped" true (Transport.breaker tr = Transport.Open);
  let reads0 = (Target.stats tgt).Target.reads in
  let faults0 = Target.fault_count tgt in
  for _ = 1 to 25 do
    Alcotest.(check int) "refused read yields 0" 0
      (Target.as_int tgt (Target.member tgt init "pid"))
  done;
  Alcotest.(check int) "Kmem read counter froze" reads0 (Target.stats tgt).Target.reads;
  Alcotest.(check bool) "refusals recorded as Link_lost faults" true
    (Target.fault_count tgt > faults0);
  (match List.rev (Target.faults tgt) with
  | Target.Link_lost { detail; _ } :: _ ->
      Alcotest.(check string) "fault names the breaker" "breaker-open" detail
  | _ -> Alcotest.fail "expected a Link_lost fault on top")

let test_breaker_half_open_recovery () =
  let policy =
    { Transport.default_policy with
      Transport.max_retries = 0; breaker_threshold = 2; breaker_cooldown_ms = 10. }
  in
  let tr = Transport.create ~seed:2 ~policy ~faults:drop_everything Transport.qemu_local in
  for _ = 1 to 2 do
    ignore (Transport.fetch tr ~bytes:8 (fun () -> ()))
  done;
  Alcotest.(check bool) "Open after threshold" true (Transport.breaker tr = Transport.Open);
  (* heal the link; the first refused fetch charges nothing, so push the
     clock past the cooldown with a reconnect resync *)
  Transport.set_faults tr Transport.no_faults;
  Transport.reconnect tr;
  Alcotest.(check bool) "Half_open after resync" true
    (Transport.breaker tr = Transport.Half_open);
  (match Transport.fetch tr ~bytes:8 (fun () -> 99) with
  | Ok v -> Alcotest.(check int) "probe read went through" 99 v
  | Error e -> Alcotest.fail (Transport.error_to_string e));
  Alcotest.(check bool) "Closed after successful probe" true
    (Transport.breaker tr = Transport.Closed)

(* ------------------------------------------------------------------ *)
(* Deadline budget *)

let test_deadline_budget () =
  let _, s = session () in
  let sc = Option.get (Scripts.find "9-2") in
  (* unconstrained extraction over the serial link *)
  let tr = Transport.create Transport.kgdb_rpi400 in
  Target.set_transport s.Visualinux.target tr;
  let _, _, full = Visualinux.plot_figure s sc in
  (* a fresh session under a tight budget degrades but completes; the
     read cache stays off so every field read is its own round-trip —
     the budget must bite mid-extraction, not be amortized away by
     struct-granular coalescing *)
  let _, s2 = session () in
  let tr2 = Transport.create Transport.kgdb_rpi400 in
  Transport.set_deadline tr2 (Some 40.);
  Target.set_transport s2.Visualinux.target tr2;
  Target.set_read_cache s2.Visualinux.target false;
  let _, res2, tight = Visualinux.plot_figure s2 sc in
  Alcotest.(check bool) "budget run yields fewer boxes" true
    (tight.Visualinux.boxes < full.Visualinux.boxes);
  Alcotest.(check bool) "still produced a plot" true (tight.Visualinux.boxes > 0);
  let sn = Option.get tight.Visualinux.link in
  Alcotest.(check bool) "deadline refusals counted" true (sn.Transport.deadline_hits > 0);
  Alcotest.(check bool) "Timed_out faults in the journal" true
    (List.exists
       (function Target.Timed_out _ -> true | _ -> false)
       (Target.faults s2.Visualinux.target));
  (* over-budget boxes are marked broken, not dropped silently *)
  Alcotest.(check bool) "broken boxes tagged" true
    (List.exists (fun b -> Vgraph.broken b <> None) (Vgraph.boxes res2.Viewcl.graph));
  Alcotest.(check bool) "budget accounting visible" true
    (Transport.budget_spent tr2 >= 40.)

let plots_survive_any_fault_rate =
  QCheck.Test.make ~name:"extraction never raises over a faulty link" ~count:8
    QCheck.(pair (int_bound 1_000_000) (int_bound 30))
    (fun (seed, pct) ->
      let _, s = session () in
      let tr =
        Transport.create ~seed
          ~faults:(Transport.faults_of_rate (float_of_int pct /. 100.))
          Transport.kgdb_rpi400
      in
      Transport.set_deadline tr (Some 500.);
      Target.set_transport s.Visualinux.target tr;
      let sc = Option.get (Scripts.find "3-4") in
      let _, _, stats = Visualinux.plot_figure s sc in
      if Transport.link tr = Transport.Down then Transport.reconnect tr;
      stats.Visualinux.boxes >= 0)

(* ------------------------------------------------------------------ *)
(* Crash-safe sessions: journal, recover, refresh *)

let box_ids g = List.map (fun b -> b.Vgraph.id) (Vgraph.boxes g)

let build_multi_pane s =
  let sc34 = Option.get (Scripts.find "3-4") in
  let sc71 = Option.get (Scripts.find "7-1") in
  let pane1, _, _ = Visualinux.plot_figure s sc34 in
  (match
     Visualinux.vctrl s
       (Visualinux.Split
          { pane = pane1.Panel.pid; dir = `Vertical; program = sc71.Scripts.source })
   with
  | Visualinux.Opened _ -> ()
  | _ -> Alcotest.fail "split failed");
  ignore
    (Visualinux.vctrl s
       (Visualinux.Apply
          { pane = pane1.Panel.pid;
            viewql = "a = SELECT task_struct FROM * WHERE pid > 3\nUPDATE a WITH collapsed: true" }));
  let picked =
    match box_ids pane1.Panel.graph with a :: b :: _ -> [ a; b ] | l -> l
  in
  (match Visualinux.vctrl s (Visualinux.Select { pane = pane1.Panel.pid; boxes = picked }) with
  | Visualinux.Opened _ -> ()
  | _ -> Alcotest.fail "select failed")

let pane_fingerprints s =
  List.map
    (fun id ->
      let p = Panel.pane s.Visualinux.panel id in
      (id, box_ids p.Panel.graph, p.Panel.history))
    (Panel.pane_ids s.Visualinux.panel)

let test_recover_reproduces_session () =
  let kernel = Kstate.boot () in
  let w = Workload.create kernel in
  Workload.run w;
  let tr = Transport.create Transport.qemu_local in
  let s = Visualinux.attach ~transport:tr kernel in
  build_multi_pane s;
  let before = pane_fingerprints s in
  Alcotest.(check int) "multi-pane session built" 3 (List.length before);
  (* the crash: link dies, then an extraction is attempted mid-flight *)
  Transport.disconnect tr;
  Panel.mark_all_stale s.Visualinux.panel;
  let sc71 = Option.get (Scripts.find "7-1") in
  let crash_pane, _, _ = Visualinux.plot_figure s sc71 in
  Alcotest.(check bool) "mid-crash plot degraded, not raised" true
    (Vgraph.box_count crash_pane.Panel.graph < 5);
  (* recover: reconnect + journal replay *)
  let stale = Visualinux.recover s in
  Alcotest.(check int) "nothing stale once the link is back" 0 stale;
  Alcotest.(check bool) "link resynced" true (Transport.link tr = Transport.Up);
  let after = pane_fingerprints s in
  Alcotest.(check int) "all panes back (incl. the mid-crash one)" 4 (List.length after);
  List.iter
    (fun (id, ids, hist) ->
      match List.find_opt (fun (id', _, _) -> id' = id) after with
      | None -> Alcotest.fail (Printf.sprintf "pane %d lost in recovery" id)
      | Some (_, ids', hist') ->
          Alcotest.(check (list int))
            (Printf.sprintf "pane %d: same box ids" id)
            ids ids';
          Alcotest.(check (list string))
            (Printf.sprintf "pane %d: same ViewQL history" id)
            hist hist')
    before;
  (* the pane whose extraction the crash ruined is now fully extracted *)
  let _, crash_ids, _ = List.nth after 3 in
  Alcotest.(check bool) "crashed pane re-extracted" true (List.length crash_ids > 5);
  (* the refinement replayed: collapsed tasks are collapsed again *)
  let p1 = Panel.pane s.Visualinux.panel 1 in
  Alcotest.(check bool) "ViewQL effects reproduced" true
    (List.exists
       (fun b -> b.Vgraph.attrs.Vgraph.collapsed)
       (Vgraph.boxes p1.Panel.graph))

let test_recover_while_down_then_refresh () =
  let kernel = Kstate.boot () in
  let w = Workload.create kernel in
  Workload.run w;
  let tr = Transport.create Transport.qemu_local in
  let s = Visualinux.attach ~transport:tr kernel in
  build_multi_pane s;
  let ops = Panel.journal s.Visualinux.panel in
  (* link still down at recovery time: panes come back STALE, ids intact *)
  Transport.disconnect tr;
  let panel, stale = Panel.recover ~extract:(fun _ -> None) ops in
  s.Visualinux.panel <- panel;
  Alcotest.(check bool) "primary panes stale" true (stale >= 2);
  Alcotest.(check (list int)) "pane ids preserved though extraction failed"
    [ 1; 2; 3 ] (Panel.pane_ids panel);
  (match Visualinux.render_pane s 1 with
  | Some out -> Alcotest.(check bool) "stale pane tagged in render" true (contains out "[STALE]")
  | None -> Alcotest.fail "pane 1 must render");
  (* link comes back: refresh re-extracts and replays each pane's history *)
  Transport.reconnect tr;
  let refreshed = Visualinux.refresh_stale s in
  Alcotest.(check bool) "stale primaries refreshed" true (List.length refreshed >= 2);
  Alcotest.(check (list int)) "no stale primaries left" []
    (List.filter
       (fun id ->
         let p = Panel.pane s.Visualinux.panel id in
         p.Panel.stale
         && match p.Panel.kind with Panel.Primary _ -> true | Panel.Secondary _ -> false)
       (Panel.pane_ids s.Visualinux.panel));
  let p1 = Panel.pane s.Visualinux.panel 1 in
  Alcotest.(check bool) "pane live with real boxes" true (Vgraph.box_count p1.Panel.graph > 5);
  Alcotest.(check bool) "history replayed on refresh" true
    (List.exists (fun b -> b.Vgraph.attrs.Vgraph.collapsed) (Vgraph.boxes p1.Panel.graph));
  (match Visualinux.render_pane s 1 with
  | Some out -> Alcotest.(check bool) "STALE tag gone" false (contains out "[STALE]")
  | None -> Alcotest.fail "pane 1 must render")

let test_journal_json_roundtrip () =
  let _, s = session () in
  build_multi_pane s;
  Panel.close s.Visualinux.panel 3;
  let ops = Panel.journal s.Visualinux.panel in
  let ops' = Panel.journal_of_json (Panel.journal_to_json s.Visualinux.panel) in
  Alcotest.(check int) "op count survives json" (List.length ops) (List.length ops');
  Alcotest.(check bool) "ops survive json round-trip" true (ops = ops')

let suite =
  [ QCheck_alcotest.to_alcotest backoff_deterministic;
    Alcotest.test_case "backoff schedule replays from its seed" `Quick
      test_backoff_schedule_replays;
    QCheck_alcotest.to_alcotest retries_never_exceed_cap;
    QCheck_alcotest.to_alcotest retry_cap_under_partial_loss;
    Alcotest.test_case "open breaker: zero underlying reads" `Quick test_breaker_zero_reads;
    Alcotest.test_case "open breaker: Kmem counter frozen, faults typed" `Quick
      test_breaker_zero_kmem_reads;
    Alcotest.test_case "breaker: Open -> Half_open -> Closed" `Quick
      test_breaker_half_open_recovery;
    Alcotest.test_case "deadline budget truncates, never blocks" `Quick test_deadline_budget;
    QCheck_alcotest.to_alcotest plots_survive_any_fault_rate;
    Alcotest.test_case "recover after disconnect: same panes, same box ids" `Quick
      test_recover_reproduces_session;
    Alcotest.test_case "recover while down: stale panes, then refresh" `Quick
      test_recover_while_down_then_refresh;
    Alcotest.test_case "journal JSON round-trip" `Quick test_journal_json_roundtrip ]
