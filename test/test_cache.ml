(* The extraction fast path (ISSUE 5): the generation-validated read
   cache, struct-granular coalescing, and incremental re-plot.

   The correctness bar: caching is an optimization of WHERE bytes come
   from, never of WHAT the plot says.  A warm cached re-plot must render
   bit-identically to a cold uncached plot of the same kernel state —
   under writes, chaos mutation storms, and fault injection — and a
   Kmem write must invalidate exactly the cached boxes whose pages it
   stamped (closed upward over the box graph). *)

let session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  (k, w, Visualinux.attach k)

let source fig = (Option.get (Scripts.find fig)).Scripts.source

(* Canonical render: ids renumbered 1..n in preorder from the roots, so
   an in-place warm refresh (old ids) and a cold plot (fresh ids) of the
   same state print the same text. *)
let canonical ?(title = "plot") g =
  let g' = Vgraph.renumber g in
  Vgraph.set_title g' title;
  Render.ascii g'

(* A cold control plot of the same kernel through a fresh target with
   the read cache off: the pre-ISSUE-5 extraction path. *)
let cold_plot k src =
  let s = Visualinux.attach k in
  Target.set_read_cache s.Visualinux.target false;
  let res = Viewcl.run ~cfg:s.Visualinux.cfg s.Visualinux.target src in
  res.Viewcl.graph

(* ------------------------------------------------------------------ *)
(* Target tier: repeated reads skip the wire *)

let test_repeat_plot_skips_transport () =
  let _, _, s = session () in
  let tr = Transport.create Transport.qemu_local in
  Target.set_transport s.Visualinux.target tr;
  let pane, _, _ = Visualinux.vplot s (source "3-4") in
  let cold_ok = (Transport.snapshot tr).Transport.reads_ok in
  Alcotest.(check bool) "cold plot fetched" true (cold_ok > 0);
  Target.reset_cache_stats s.Visualinux.target;
  (match Visualinux.vrefresh s ~pane:pane.Panel.pid with
  | None -> Alcotest.fail "vrefresh failed"
  | Some (res, stats) ->
      let cs = Target.cache_stats s.Visualinux.target in
      Alcotest.(check bool) "warm refresh adopted boxes" true (stats.Visualinux.cache_hits > 0);
      Alcotest.(check int) "nothing invalidated without writes" 0
        stats.Visualinux.cache_invalidated;
      Alcotest.(check bool) "no transport misses on a warm plot" true
        (cs.Target.misses = 0 || cs.Target.hits > 10 * cs.Target.misses);
      Alcotest.(check bool) "no re-extraction without writes" true
        (res.Viewcl.rebuilt = []));
  let warm_ok = (Transport.snapshot tr).Transport.reads_ok - cold_ok in
  Alcotest.(check bool)
    (Printf.sprintf "warm fetches (%d) at least 5x below cold (%d)" warm_ok cold_ok)
    true (warm_ok * 5 <= cold_ok)

let test_coalescing_counts () =
  let _, _, s = session () in
  let tr = Transport.create Transport.qemu_local in
  Target.set_transport s.Visualinux.target tr;
  ignore (Visualinux.vplot s (source "7-1"));
  let cs = Target.cache_stats s.Visualinux.target in
  Alcotest.(check bool) "struct extents were coalesced" true (cs.Target.coalesced > 0);
  (* within one cold plot the per-field reads after each prefetch hit *)
  Alcotest.(check bool) "field reads after a prefetch hit the cache" true
    (cs.Target.hits > cs.Target.misses)

let test_cache_off_restores_per_field_reads () =
  let _, _, s = session () in
  let tr = Transport.create Transport.qemu_local in
  Target.set_transport s.Visualinux.target tr;
  Target.set_read_cache s.Visualinux.target false;
  ignore (Visualinux.vplot s (source "3-4"));
  let cs = Target.cache_stats s.Visualinux.target in
  Alcotest.(check int) "no hits" 0 cs.Target.hits;
  Alcotest.(check int) "no coalesced fetches" 0 cs.Target.coalesced

(* ------------------------------------------------------------------ *)
(* Identity: warm cached re-plot == cold uncached plot *)

let figures = [| "3-4"; "7-1"; "9-2"; "12-3"; "6-1" |]

let warm_equals_cold =
  QCheck.Test.make ~name:"warm cached re-plot renders identically to a cold plot" ~count:12
    QCheck.(triple (int_bound 1_000_000) (int_bound 4) (int_bound 3))
    (fun (seed, figi, storm) ->
      let k, w, s = session () in
      let tr = Transport.create ~seed Transport.qemu_local in
      Target.set_transport s.Visualinux.target tr;
      let src = source figures.(figi) in
      let pane, _, _ = Visualinux.vplot s src in
      (* a mutation storm between the plots: scheduler churn, comm
         scribbles, timer adds, mmap/munmap (maple rebuilds) *)
      let chaos = Workload.Chaos.create ~seed w ~rate:1.0 in
      for _ = 1 to storm * 7 do
        Workload.Chaos.mutate chaos
      done;
      match Visualinux.vrefresh s ~pane:pane.Panel.pid with
      | None -> false
      | Some (res, _) ->
          let warm = canonical res.Viewcl.graph in
          let cold = canonical (cold_plot k src) in
          warm = cold)

let warm_equals_cold_under_injection =
  QCheck.Test.make ~name:"identity holds under fault injection (reuse self-disables)"
    ~count:6
    QCheck.(pair (int_bound 1_000_000) (int_bound 4))
    (fun (seed, figi) ->
      let k, _, s = session () in
      let src = source figures.(figi) in
      let pane, _, _ = Visualinux.vplot s src in
      (* attach the cold session before arming: attach itself reads
         target memory, and those reads must not consume LCG draws *)
      let cold_s = Visualinux.attach k in
      Target.set_read_cache cold_s.Visualinux.target false;
      let mem = k.Kstate.ctx.Kcontext.mem in
      (* identical LCG schedule for the warm and the cold run *)
      Kmem.inject_read_failures mem ~seed 0.05;
      let warm =
        match Visualinux.vrefresh s ~pane:pane.Panel.pid with
        | None -> None
        | Some (_, stats) when stats.Visualinux.cache_hits > 0 ->
            (* cross-run reuse must be off while injection is armed *)
            Some "reuse-while-armed"
        | Some (res, _) -> Some (canonical res.Viewcl.graph)
      in
      Kmem.clear_injection mem;
      Kmem.inject_read_failures mem ~seed 0.05;
      (* identical outcomes: most injected faults degrade to [BROKEN]
         boxes, but a fault consumed by a plot root's ${...} expression
         raises out of the run — then the warm path must have failed
         the same way (vrefresh catches it and returns None) *)
      let cold =
        match Viewcl.run ~cfg:cold_s.Visualinux.cfg cold_s.Visualinux.target src with
        | res -> Some (canonical res.Viewcl.graph)
        | exception _ -> None
      in
      Kmem.clear_injection mem;
      warm = cold)

(* ------------------------------------------------------------------ *)
(* Exactness: a write invalidates the boxes whose pages it stamped,
   their ancestors (the upward closure over the box graph), and nothing
   else *)

(* Parents over the same child edges reuse validity walks over. *)
let parent_map g =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun b ->
      List.iter
        (fun kid -> Hashtbl.replace tbl kid (b.Vgraph.id :: Option.value ~default:[] (Hashtbl.find_opt tbl kid)))
        (Vgraph.child_ids b))
    (Vgraph.boxes g);
  tbl

let upward_closure g seeds =
  let parents = parent_map g in
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter go (Option.value ~default:[] (Hashtbl.find_opt parents id))
    end
  in
  List.iter go seeds;
  seen

let exact_invalidation =
  QCheck.Test.make ~name:"a write invalidates exactly the boxes whose pages it stamped"
    ~count:15
    QCheck.(pair (int_bound 1_000_000) (int_bound 4))
    (fun (seed, figi) ->
      let k, _, s = session () in
      let src = source figures.(figi) in
      let pane, res0, _ = Visualinux.vplot s src in
      let cache = res0.Viewcl.cache in
      let stamped = List.filter (fun id -> Viewcl.cache_pages cache id <> []) (Viewcl.cache_boxes cache) in
      QCheck.assume (stamped <> []);
      let victim = List.nth stamped (seed mod List.length stamped) in
      let page, _ = List.hd (Viewcl.cache_pages cache victim) in
      (* write a byte back to itself: content unchanged, generation bumps *)
      let a = page lsl Kmem.page_bits in
      let mem = k.Kstate.ctx.Kcontext.mem in
      Kmem.write_u8 mem a (Kmem.read_u8 mem a);
      (* expected: every cached box stamped with that page, closed upward *)
      let touched =
        List.filter
          (fun id -> List.mem_assoc page (Viewcl.cache_pages cache id))
          (Viewcl.cache_boxes cache)
      in
      let cached = Hashtbl.create 64 in
      List.iter (fun id -> Hashtbl.replace cached id ()) (Viewcl.cache_boxes cache);
      let closure = upward_closure res0.Viewcl.graph touched in
      let expected =
        Hashtbl.fold (fun id () acc -> if Hashtbl.mem cached id then id :: acc else acc) closure []
        |> List.sort compare
      in
      match Visualinux.vrefresh s ~pane:pane.Panel.pid with
      | None -> false
      | Some (res, _) -> res.Viewcl.rebuilt = expected)

(* ------------------------------------------------------------------ *)
(* Failure rollback: a run that raises must not corrupt the pane *)

(* The high-severity review scenario: a re-plot over a live cache
   raises partway (here: an unknown definition evaluated after the real
   plots, standing in for a box-budget blowout or eval error).  The
   shared graph must keep its pre-failure roots, no half-rebuilt box
   may later be adopted as a valid snapshot, and the next warm refresh
   must still render identically to a cold plot. *)
let test_failed_run_rolls_back () =
  let k, w, s = session () in
  let src = source "3-4" in
  let pane, res0, _ = Visualinux.vplot s src in
  let roots0 = Vgraph.roots res0.Viewcl.graph in
  (* dirty pages so the failing re-run rebuilds boxes in place first *)
  let chaos = Workload.Chaos.create ~seed:42 w ~rate:1.0 in
  for _ = 1 to 10 do
    Workload.Chaos.mutate chaos
  done;
  let bad = src ^ "\nplot NoSuchDef(${0})\n" in
  (match Viewcl.run ~cfg:s.Visualinux.cfg ~cache:res0.Viewcl.cache s.Visualinux.target bad with
  | _ -> Alcotest.fail "expected the bad program to fail"
  | exception Viewcl.Error _ -> ());
  Alcotest.(check (list int)) "pre-failure roots restored" roots0
    (Vgraph.roots res0.Viewcl.graph);
  match Visualinux.vrefresh s ~pane:pane.Panel.pid with
  | None -> Alcotest.fail "vrefresh after a failed run"
  | Some (res, _) ->
      Alcotest.(check string) "warm refresh after a failed run == cold plot"
        (canonical (cold_plot k src))
        (canonical res.Viewcl.graph)

(* A redefined Box changing its C type must not reuse the old box in
   place: btype/size are frozen at allocation and feed renders,
   total_bytes and the typed-SELECT index. *)
let test_redefined_btype_reallocates () =
  let _, _, s = session () in
  let tgt = s.Visualinux.target in
  let cfg = s.Visualinux.cfg in
  let r1 = Viewcl.run ~cfg tgt "define D as Box<task_struct> [ Text pid ]\nplot D(${&init_task})" in
  let id1 = List.hd r1.Viewcl.plots in
  Alcotest.(check string) "first build typed task_struct" "task_struct"
    (Vgraph.get r1.Viewcl.graph id1).Vgraph.btype;
  let r2 =
    Viewcl.run ~cfg ~cache:r1.Viewcl.cache tgt
      "define D as Box<list_head> [ Text<raw_ptr> next ]\nplot D(${&init_task})"
  in
  let id2 = List.hd r2.Viewcl.plots in
  Alcotest.(check bool) "fresh box allocated for the new type" true (id2 <> id1);
  let b2 = Vgraph.get r2.Viewcl.graph id2 in
  Alcotest.(check string) "box carries the new C type" "list_head" b2.Vgraph.btype;
  Alcotest.(check int) "box carries the new size"
    (Ctype.sizeof (Target.types tgt) (Ctype.Named "list_head"))
    b2.Vgraph.size;
  Alcotest.(check bool) "stale box swept from the graph" true
    (Vgraph.find r2.Viewcl.graph id1 = None);
  Alcotest.(check (list int)) "type index reflects the redefinition" []
    (Vgraph.ids_of_type r2.Viewcl.graph "task_struct");
  Alcotest.(check (list int)) "definition index points at the new box" [ id2 ]
    (Vgraph.ids_of_type r2.Viewcl.graph "D")

(* The persistent graph must not accumulate boxes that churn pushed out
   of the structure: after refreshes under heavy mutation it stays
   bounded by what a cold plot of the same state builds. *)
let test_graph_bounded_across_refreshes () =
  let k, w, s = session () in
  let src = source "9-2" in
  let pane, _, _ = Visualinux.vplot s src in
  let chaos = Workload.Chaos.create ~seed:7 w ~rate:1.0 in
  let final = ref 0 in
  for _ = 1 to 6 do
    for _ = 1 to 5 do
      Workload.Chaos.mutate chaos
    done;
    match Visualinux.vrefresh s ~pane:pane.Panel.pid with
    | None -> Alcotest.fail "vrefresh failed"
    | Some (res, stats) ->
        final := Vgraph.box_count res.Viewcl.graph;
        Alcotest.(check int) "plot_stats counts the swept graph" !final
          stats.Visualinux.boxes
  done;
  Alcotest.(check bool) "persistent graph bounded by a cold plot" true
    (!final <= Vgraph.box_count (cold_plot k src))

(* ------------------------------------------------------------------ *)
(* ViewQL over the refreshed (persistent) graph *)

let test_viewql_index_after_refresh () =
  let _, w, s = session () in
  let pane, res0, _ = Visualinux.vplot s (source "3-4") in
  let count g =
    let qs = Viewql.make_session g in
    ignore (Viewql.exec qs "t = SELECT task_struct FROM *");
    List.length (Viewql.eval_set qs (Viewql.Named "t"))
  in
  let n0 = count res0.Viewcl.graph in
  Alcotest.(check bool) "typed SELECT finds tasks via the index" true (n0 > 0);
  let chaos = Workload.Chaos.create ~seed:11 w ~rate:1.0 in
  for _ = 1 to 5 do Workload.Chaos.mutate chaos done;
  match Visualinux.vrefresh s ~pane:pane.Panel.pid with
  | None -> Alcotest.fail "vrefresh failed"
  | Some (res, _) ->
      (* in-place rebuilds must not duplicate or lose index entries *)
      Alcotest.(check int) "same task count after an in-place refresh" n0
        (count res.Viewcl.graph);
      let ids = Vgraph.ids_of_type res.Viewcl.graph "task_struct" in
      Alcotest.(check (list int)) "index ids are unique and sorted"
        (List.sort_uniq compare ids) ids

let suite =
  [ Alcotest.test_case "repeat plot skips the transport" `Quick test_repeat_plot_skips_transport;
    Alcotest.test_case "struct reads are coalesced" `Quick test_coalescing_counts;
    Alcotest.test_case "cache off restores per-field reads" `Quick
      test_cache_off_restores_per_field_reads;
    QCheck_alcotest.to_alcotest warm_equals_cold;
    QCheck_alcotest.to_alcotest warm_equals_cold_under_injection;
    QCheck_alcotest.to_alcotest exact_invalidation;
    Alcotest.test_case "failed run rolls back" `Quick test_failed_run_rolls_back;
    Alcotest.test_case "redefined btype reallocates" `Quick test_redefined_btype_reallocates;
    Alcotest.test_case "graph bounded across refreshes" `Quick
      test_graph_bounded_across_refreshes;
    Alcotest.test_case "viewql index survives refresh" `Quick test_viewql_index_after_refresh ]
