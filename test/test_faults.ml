(* Robustness of the target layer: typed faults, fault injection,
   bounded traversal, and graceful degradation of ViewCL extraction —
   the paper's case studies plot *corrupted* kernels (dangling and
   low-bit-tagged pointers), so extraction must never hang or abort. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  (k, Visualinux.attach k)

(* ------------------------------------------------------------------ *)
(* Kmem injection hooks *)

let test_injection_hooks () =
  let mem = Kmem.create () in
  let a = Kmem.alloc mem ~tag:"obj" 64 in
  Kmem.write_u64 mem a 0xdeadbeef;
  (* address-range poisoning *)
  Kmem.poison_range mem a 8;
  let v = Kmem.read_u64 mem a in
  Alcotest.(check bool) "poisoned read corrupted" true (v <> 0xdeadbeef);
  (match Kmem.faults mem with
  | [ Kmem.Injected at ] -> Alcotest.(check int) "fault names the address" a at
  | _ -> Alcotest.fail "expected exactly one Injected fault");
  Kmem.clear_injection mem;
  Kmem.clear_faults mem;
  Alcotest.(check int) "clean after clear_injection" 0xdeadbeef (Kmem.read_u64 mem a);
  (* probabilistic failure is deterministic under a fixed seed *)
  let trace () =
    Kmem.inject_read_failures mem ~seed:42 0.5;
    List.init 100 (fun i -> Kmem.read_u8 mem (a + (i mod 64)))
  in
  let c0 = Kmem.fault_count mem in
  let r1 = trace () in
  let c1 = Kmem.fault_count mem in
  let r2 = trace () in
  Alcotest.(check bool) "same seed, same corruption" true (r1 = r2);
  Alcotest.(check bool) "some reads failed" true (c1 > c0);
  Alcotest.(check int) "and deterministically many" (c1 - c0) (Kmem.fault_count mem - c1);
  Kmem.clear_injection mem;
  Kmem.clear_faults mem;
  (* bit flips corrupt silently: data changes, no fault *)
  Kmem.write_u8 mem (a + 1) 0x0f;
  Kmem.flip_bits mem (a + 1) ~mask:0xff;
  Alcotest.(check int) "bits flipped" 0xf0 (Kmem.read_u8 mem (a + 1));
  Alcotest.(check int) "silent corruption" 0 (Kmem.fault_count mem)

(* qcheck: read/write round-trips for every width at random offsets *)
let roundtrip_test =
  let mem = Kmem.create () in
  let base = Kmem.alloc mem ~tag:"roundtrip" 8192 in
  QCheck.Test.make ~name:"kmem read/write round-trips (all widths, random offsets)" ~count:500
    QCheck.(triple (int_bound 8000) (pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
              (oneofl [ 1; 2; 4; 8 ]))
    (fun (off, (lo, hi), w) ->
      let a = base + off in
      let v = lo lor (hi lsl 30) in
      let bits = 8 * w in
      let expect = if w = 8 then v else v land ((1 lsl bits) - 1) in
      (match w with
      | 1 -> Kmem.write_u8 mem a v
      | 2 -> Kmem.write_u16 mem a v
      | 4 -> Kmem.write_u32 mem a v
      | _ -> Kmem.write_u64 mem a v);
      let got =
        match w with
        | 1 -> Kmem.read_u8 mem a
        | 2 -> Kmem.read_u16 mem a
        | 4 -> Kmem.read_u32 mem a
        | _ -> Kmem.read_u64 mem a
      in
      let signed =
        match w with
        | 1 -> Kmem.read_i8 mem a
        | 2 -> Kmem.read_i16 mem a
        | 4 -> Kmem.read_i32 mem a
        | _ -> Kmem.read_u64 mem a
      in
      let sexpect =
        if w = 8 then expect
        else
          let m = 1 lsl (bits - 1) in
          (expect lxor m) - m
      in
      got = expect && signed = sexpect)

(* ------------------------------------------------------------------ *)
(* Typed faults in Target *)

let small_reg () =
  let reg = Ctype.create_registry () in
  Ctype.define_struct reg "cell"
    [ Ctype.F ("x", Ctype.u64); Ctype.F ("next", Ctype.Ptr (Ctype.Named "cell")) ];
  reg

let test_typed_faults () =
  let mem = Kmem.create () in
  let reg = small_reg () in
  let tgt = Target.create mem reg in
  let a = Kmem.alloc mem ~tag:"cell" 16 in
  Kmem.write_u64 mem a 7;
  (* clean read: no faults *)
  Alcotest.(check int) "clean read" 7
    (Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "cell") a) "x"));
  Alcotest.(check int) "no faults yet" 0 (Target.fault_count tgt);
  (* null *)
  ignore (Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "cell") 0) "x"));
  (match Target.faults tgt with
  | [ Target.Null_deref _ ] -> ()
  | fs -> Alcotest.failf "expected Null_deref, got %d faults" (List.length fs));
  Target.clear_faults tgt;
  (* wild *)
  ignore (Target.as_int tgt (Target.obj Ctype.u32 0x1234_5678));
  (match Target.faults tgt with
  | [ Target.Wild_access { at = 0x1234_5678 } ] -> ()
  | _ -> Alcotest.fail "expected Wild_access");
  Target.clear_faults tgt;
  (* use-after-free: poison comes back, fault recorded, no exception *)
  Kmem.free mem a;
  let v = Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "cell") a) "x") in
  Alcotest.(check bool) "poison value" true (v <> 7);
  (match Target.faults tgt with
  | [ Target.Use_after_free { obj; tag = "cell"; _ } ] -> Alcotest.(check int) "base" a obj
  | _ -> Alcotest.fail "expected Use_after_free");
  Target.clear_faults tgt;
  (* misaligned: dereferencing a poison (odd) pointer is flagged *)
  let garbage = Target.ptr_to (Ctype.Named "cell") 0x6b6b6b6b6b6b in
  ignore (Target.member tgt garbage "x");
  Alcotest.(check bool) "misaligned flagged" true
    (List.exists (function Target.Misaligned _ -> true | _ -> false) (Target.faults tgt));
  Target.clear_faults tgt;
  (* bad cast *)
  ignore (Target.cast tgt Ctype.Void (Target.int_value 3));
  (match Target.faults tgt with
  | [ Target.Bad_cast _ ] -> ()
  | _ -> Alcotest.fail "expected Bad_cast");
  Target.clear_faults tgt;
  (* structural misuse still raises, as test_target pins down *)
  (match Target.deref tgt (Target.int_value 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deref of int must raise")

let test_with_faults_nesting () =
  let tgt = Target.create (Kmem.create ()) (small_reg ()) in
  let (), outer =
    Target.with_faults tgt (fun () ->
        Target.record_fault tgt (Target.Wild_access { at = 1 });
        let (), inner =
          Target.with_faults tgt (fun () ->
              Target.record_fault tgt (Target.Null_deref { at = 0; ctx = "t" }))
        in
        Alcotest.(check int) "inner sees its own fault" 1 (List.length inner))
  in
  Alcotest.(check int) "outer does not see nested faults" 1 (List.length outer);
  Alcotest.(check int) "journal sees both" 2 (Target.fault_count tgt)

let test_target_mirrors_injection () =
  let mem = Kmem.create () in
  let tgt = Target.create mem (small_reg ()) in
  let a = Kmem.alloc mem ~tag:"cell" 16 in
  Kmem.poison_range mem a 16;
  ignore (Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "cell") a) "x"));
  Alcotest.(check bool) "Injected mirrored into Target journal" true
    (List.exists (function Target.Injected _ -> true | _ -> false) (Target.faults tgt))

(* qcheck: no Target operation raises while reads are being corrupted.
   The ops below are all type-correct; whatever garbage injection makes
   them read must surface as journal faults, never as exceptions. *)
let no_raise_test =
  let k, s = session () in
  ignore k;
  let tgt = s.Visualinux.target in
  let mem = Target.mem tgt in
  let init = Target.as_int tgt (Cexpr.eval_string tgt "&init_task") in
  QCheck.Test.make ~name:"no Target operation raises under fault injection" ~count:300
    QCheck.(pair (int_bound 0xFFFF) (int_bound 6))
    (fun (seed, op) ->
      Kmem.inject_read_failures mem ~seed 0.4;
      Kmem.poison_range mem (init + (seed mod 512)) 32;
      let t = Target.ptr_to (Ctype.Named "task_struct") init in
      let ok =
        match
          match op with
          | 0 -> ignore (Target.as_int tgt (Target.member_path tgt t "mm.mm_mt.ma_root"))
          | 1 -> ignore (Target.as_string tgt (Target.member tgt t "comm"))
          | 2 -> ignore (Target.as_int tgt (Target.member_path tgt t "parent.pid"))
          | 3 ->
              let mm = Target.member tgt t "mm" in
              ignore (Target.truthy tgt (Target.member tgt mm "mm_mt"))
          | 4 -> ignore (Target.load tgt (Target.index tgt (Target.member tgt t "comm") (seed mod 16)))
          | 5 -> ignore (Target.as_int tgt (Target.cast tgt Ctype.char (Target.member tgt t "pid")))
          | _ -> ignore (Target.as_int tgt (Target.deref tgt (Target.member tgt t "mm")))
        with
        | () -> true
        | exception _ -> false
      in
      Kmem.clear_injection mem;
      Target.clear_faults tgt;
      Kmem.clear_faults mem;
      ok)

(* ------------------------------------------------------------------ *)
(* Cycle guards: circular chains truncate instead of hanging *)

let test_cycle_guard_synthetic () =
  let mem = Kmem.create () in
  let reg = Ctype.create_registry () in
  Ctype.define_struct reg "list_head"
    [ Ctype.F ("next", Ctype.Ptr (Ctype.Named "list_head"));
      Ctype.F ("prev", Ctype.Ptr (Ctype.Named "list_head")) ];
  Ctype.define_struct reg "node"
    [ Ctype.F ("lh", Ctype.Named "list_head"); Ctype.F ("v", Ctype.u64) ];
  let tgt = Target.create mem reg in
  let head = Kmem.alloc mem ~tag:"list_head" 16 in
  let n1 = Kmem.alloc mem ~tag:"node" 24 in
  let n2 = Kmem.alloc mem ~tag:"node" 24 in
  let n3 = Kmem.alloc mem ~tag:"node" 24 in
  (* head -> n1 -> n2 -> n3 -> n2: a cycle that never returns to head *)
  Kmem.write_u64 mem head n1;
  Kmem.write_u64 mem n1 n2;
  Kmem.write_u64 mem n2 n3;
  Kmem.write_u64 mem n3 n2;
  List.iteri (fun i n -> Kmem.write_u64 mem (n + 16) (i + 1)) [ n1; n2; n3 ];
  Target.add_symbol tgt "chain" (Target.obj (Ctype.Named "list_head") head);
  let res =
    Viewcl.run tgt
      {|
define N as Box<node> [ Text<u64:x> v ]
a = List(${&chain}).forEach |n| { yield N<node.lh>(@n) }
plot @a
|}
  in
  let g = res.Viewcl.graph in
  let container = List.find (fun b -> b.Vgraph.container) (Vgraph.boxes g) in
  Alcotest.(check int) "three nodes before the cycle closes" 3
    (List.length container.Vgraph.members);
  Alcotest.(check bool) "truncation recorded as a typed fault" true
    (List.exists (function Target.Truncated _ -> true | _ -> false) (Target.faults tgt));
  Alcotest.(check bool) "graph still renders" true (String.length (Render.ascii g) > 0)

let test_cycle_guard_kernel () =
  let _, s = session () in
  let tgt = s.Visualinux.target in
  let head = Target.as_int tgt (Cexpr.eval_string tgt "&init_task.children") in
  let next a =
    Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "list_head") a) "next")
  in
  let n1 = next head in
  let n2 = next n1 in
  Alcotest.(check bool) "init has two children" true (n1 <> head && n2 <> head);
  (* corrupt the sibling list into a cycle that skips the head *)
  Kmem.write_u64 (Target.mem tgt) n2 n1;
  let res =
    Viewcl.run ~cfg:(Visualinux.config ()) tgt
      {|
define T as Box<task_struct> [ Text pid, comm ]
a = List(${&init_task.children}).forEach |n| { yield T<task_struct.sibling>(@n) }
plot @a
|}
  in
  let g = res.Viewcl.graph in
  Alcotest.(check bool) "truncated, not hung: plot produced boxes" true (Vgraph.box_count g > 0);
  Alcotest.(check bool) "Truncated fault names the revisited node" true
    (List.exists
       (function Target.Truncated { at; _ } -> at = n1 | _ -> false)
       (Target.faults tgt))

(* ------------------------------------------------------------------ *)
(* Graceful degradation: a freed object in the plot becomes a broken
   box (the ISSUE's acceptance scenario). *)

let test_broken_box_in_plot () =
  let _, s = session () in
  let tgt = s.Visualinux.target in
  (* free the root maple node of the target's mm out from under the tree *)
  let node =
    Target.as_int tgt
      (Cexpr.eval_string tgt "mte_to_node(task_of_pid(target_pid)->mm->mm_mt.ma_root)")
  in
  Kmem.free (Target.mem tgt) node;
  Target.clear_faults tgt;
  (* the StackRot figure must still plot end-to-end *)
  let _, res, stats = Visualinux.vplot s ~title:"uaf-replot" Scripts.cve_stackrot in
  Alcotest.(check bool) "plot completed with boxes" true (stats.Visualinux.boxes > 0);
  let g = res.Viewcl.graph in
  let broken = List.filter (fun b -> Vgraph.broken b <> None) (Vgraph.boxes g) in
  Alcotest.(check bool) "a broken box is present" true (broken <> []);
  Alcotest.(check bool) "the fault is named on the box" true
    (List.exists
       (fun b ->
         match Vgraph.broken b with
         | Some reason -> contains reason "use-after-free" && contains reason "maple_node"
         | None -> false)
       broken);
  (* the degradation is visible in the rendered output *)
  let txt = Render.ascii g in
  Alcotest.(check bool) "ascii marks the box [BROKEN]" true (contains txt "[BROKEN]");
  Alcotest.(check bool) "ascii names the fault" true (contains txt "use-after-free")

let test_plot_under_injection () =
  (* whole-figure extraction survives probabilistic read corruption:
     fixed seeds, so a regression here is reproducible *)
  let _, s = session () in
  let mem = Target.mem s.Visualinux.target in
  let sc = Option.get (Scripts.find "7-1") in
  List.iter
    (fun seed ->
      Kmem.inject_read_failures mem ~seed 0.02;
      let _, _, stats = Visualinux.plot_figure s sc in
      Alcotest.(check bool)
        (Printf.sprintf "figure plots under injection (seed %d)" seed)
        true
        (stats.Visualinux.boxes > 0))
    [ 1; 2; 3; 4; 5 ];
  Kmem.clear_injection mem

let suite =
  [ Alcotest.test_case "kmem injection hooks" `Quick test_injection_hooks;
    QCheck_alcotest.to_alcotest roundtrip_test;
    Alcotest.test_case "typed faults (journal, not exceptions)" `Quick test_typed_faults;
    Alcotest.test_case "with_faults nesting" `Quick test_with_faults_nesting;
    Alcotest.test_case "Kmem injection mirrored into Target" `Quick test_target_mirrors_injection;
    QCheck_alcotest.to_alcotest no_raise_test;
    Alcotest.test_case "cycle guard: synthetic circular list" `Quick test_cycle_guard_synthetic;
    Alcotest.test_case "cycle guard: corrupted kernel sibling list" `Quick test_cycle_guard_kernel;
    Alcotest.test_case "broken box: freed maple node still plots" `Quick test_broken_box_in_plot;
    Alcotest.test_case "figures plot under read injection" `Quick test_plot_under_injection ]
