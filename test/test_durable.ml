(* The durable fleet journal (ISSUE 9): record framing round-trips,
   fsck is total over adversarial images (every truncation offset,
   every flipped byte, fuzzed mutations) and never surfaces a record
   whose CRC did not verify; the Sim's injected faults are seeded and
   deterministic; session-level recovery replays bit-identically and
   keeps journal corruption confined to the owning session. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let canonical g =
  let g' = Vgraph.renumber g in
  Vgraph.set_title g' "identity";
  Render.ascii g'
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (String.length l >= 5 && String.sub l 0 5 = "[obs:"))
  |> String.concat "\n"

let boot () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  k

let fig name = (Option.get (Scripts.find name)).Scripts.source
let ql_collapse = "a = SELECT mid FROM *\nUPDATE a WITH collapsed: true"

let pane_state vis =
  List.map
    (fun id ->
      let p = Panel.pane vis.Visualinux.panel id in
      ( id,
        List.map (fun b -> b.Vgraph.id) (Vgraph.boxes p.Panel.graph),
        canonical p.Panel.graph ))
    (Panel.pane_ids vis.Visualinux.panel)

let admitted = function
  | Session.Admitted x -> x
  | Session.Rejected { reason } -> Alcotest.failf "rejected: %s" (Session.reason_to_string reason)

(* A store primed with [specs] = (kind, payload) list. *)
let store specs =
  let d = Durable.create ~seed:11 () in
  List.iter (fun (k, p) -> ignore (Durable.append d ~kind:k ~payload:p)) specs;
  d

let specs_of_records recs = List.map (fun r -> (r.Durable.rkind, r.Durable.rpayload)) recs

let mixed_specs =
  [ (1, "{\"sid\":1}"); (5, "op op op"); (2, ""); (6, String.make 300 'x');
    (3, "bytes\x00\xff\n\x01 with junk"); (5, "{\"op\":{\"k\":\"refine\"}}");
    (4, "\xD7\x4A embedded magic"); (5, "tail") ]

(* -- codec ---------------------------------------------------------- *)

let roundtrip () =
  let d = store mixed_specs in
  let report, recs = Durable.fsck (Durable.contents d) in
  Alcotest.(check int) "all records back" (List.length mixed_specs) report.Durable.records_ok;
  Alcotest.(check int) "no skips" 0 report.Durable.records_skipped;
  Alcotest.(check int) "no torn tail" 0 report.Durable.torn_bytes;
  Alcotest.(check (list (pair int string)))
    "kinds+payloads identical" mixed_specs (specs_of_records recs);
  let gens = List.map (fun r -> r.Durable.rgen) recs in
  assert (List.sort_uniq compare gens = gens && List.sort compare gens = gens)

(* fsck must behave at EVERY truncation point: the records wholly inside
   the cut come back exactly, the straddled one is torn tail, and no
   offset makes it raise. *)
let truncate_everywhere () =
  let d = store mixed_specs in
  let image = Durable.contents d in
  let ends =
    (* running record end offsets, for the oracle *)
    List.rev
      (fst
         (List.fold_left
            (fun (acc, off) raw ->
              let off = off + String.length raw in
              (off :: acc, off))
            ([], 0) (Durable.record_bytes d)))
  in
  for cut = 0 to String.length image do
    let report, recs = Durable.fsck (String.sub image 0 cut) in
    let want = List.length (List.filter (fun e -> e <= cut) ends) in
    Alcotest.(check int)
      (Printf.sprintf "records at cut %d" cut)
      want report.Durable.records_ok;
    let last_end = List.fold_left (fun a e -> if e <= cut then max a e else a) 0 ends in
    Alcotest.(check int)
      (Printf.sprintf "torn bytes at cut %d" cut)
      (cut - last_end) report.Durable.torn_bytes;
    List.iteri
      (fun i r ->
        Alcotest.(check (pair int string))
          "prefix record intact"
          (List.nth mixed_specs i)
          (r.Durable.rkind, r.Durable.rpayload))
      recs
  done

(* ...and at every flipped header/payload byte: never a raise, never a
   record that was not appended, and every record the flip did not
   touch survives (magic resync skips exactly the damaged one — unless
   it is the last record, where the damage reads as a torn tail). *)
let flip_every_byte () =
  let specs = [ (5, "alpha {x}"); (1, "beta\nbeta"); (6, "gamma gamma gamma") ] in
  let d = store specs in
  let image = Durable.contents d in
  let bounds =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, off) raw ->
              let e = off + String.length raw in
              ((off, e) :: acc, e))
            ([], 0) (Durable.record_bytes d)))
  in
  let victim i = List.length (List.filter (fun (o, _) -> o <= i) bounds) - 1 in
  for i = 0 to String.length image - 1 do
    for b = 0 to 7 do
      let report, recs = Durable.fsck (Durable.flip_bit image ((i * 8) + b)) in
      ignore report;
      let got = specs_of_records recs in
      (* only appended payloads ever come back *)
      List.iter (fun s -> assert (List.mem s specs)) got;
      (* everything the flip did not touch survives *)
      List.iteri (fun j s -> if j <> victim i then assert (List.mem s got)) specs
    done
  done

let fuzz_fsck_total =
  QCheck.Test.make ~name:"fsck is total and honest over fuzzed op soups" ~count:300
    QCheck.(triple (int_bound 1_000_000) (int_bound 15) (int_bound 3))
    (fun (seed, nrec, mutation) ->
      let rnd = ref (seed lor 1) in
      let rand m =
        rnd := ((!rnd * 0x5DEECE66D) + 0xB) land max_int;
        (!rnd lsr 17) mod m
      in
      let specs =
        List.init (1 + nrec) (fun _ ->
            ( 1 + rand 6,
              String.init (rand 80) (fun _ -> Char.chr (rand 256)) ))
      in
      let d = store specs in
      let image = Durable.contents d in
      let image =
        match mutation with
        | 0 -> String.sub image 0 (rand (String.length image + 1))
        | 1 -> Durable.flip_bit image (rand (8 * String.length image))
        | 2 ->
            (* splice garbage mid-stream *)
            let at = rand (String.length image + 1) in
            String.sub image 0 at
            ^ String.init (1 + rand 40) (fun _ -> Char.chr (rand 256))
            ^ String.sub image at (String.length image - at)
        | _ ->
            Durable.flip_bit
              (String.sub image 0 (rand (String.length image + 1)))
              (rand (8 * String.length image))
      in
      let _, recs = Durable.fsck image in
      (* never a corrupt payload, generations strictly increasing *)
      List.iter (fun s -> assert (List.mem s specs)) (specs_of_records recs);
      let gens = List.map (fun r -> r.Durable.rgen) recs in
      List.sort_uniq compare gens = gens)

(* -- the Sim: injected faults are seeded and deterministic ---------- *)

let sim_lost_flush () =
  let d = Durable.create ~seed:42 () in
  for i = 1 to 8 do
    ignore (Durable.append d ~kind:5 ~payload:(Printf.sprintf "op%d" i))
  done;
  Durable.flush d;
  for i = 9 to 12 do
    ignore (Durable.append d ~kind:5 ~payload:(Printf.sprintf "op%d" i))
  done;
  Durable.set_crash ~fault:Durable.Lost_flush d ~after:12;
  ignore (Durable.append d ~kind:5 ~payload:"dropped");
  assert (Durable.crashed d);
  let image = Durable.disk_image d in
  Alcotest.(check string) "disk image deterministic" image (Durable.disk_image d);
  let report, recs = Durable.fsck image in
  Alcotest.(check int) "unflushed tail gone" 8 report.Durable.records_ok;
  Alcotest.(check int) "clean cut, no torn bytes" 0 report.Durable.torn_bytes;
  Alcotest.(check string) "last surviving op" "op8" (List.nth recs 7).Durable.rpayload

let sim_torn_and_flip () =
  List.iter
    (fun fault ->
      let d = Durable.create ~seed:42 () in
      for i = 1 to 12 do
        ignore (Durable.append d ~kind:5 ~payload:(Printf.sprintf "op-%d-payload" i))
      done;
      Durable.set_crash ~fault d ~after:12;
      ignore (Durable.append d ~kind:5 ~payload:"dropped");
      let image = Durable.disk_image d in
      Alcotest.(check string) "deterministic" image (Durable.disk_image d);
      let report, recs = Durable.fsck image in
      (* one record damaged at most, and it never comes back corrupt *)
      assert (report.Durable.records_ok >= 11);
      List.iter
        (fun r -> assert (contains r.Durable.rpayload "-payload"))
        recs;
      if fault = Durable.Torn_tail then assert (report.Durable.torn_bytes > 0))
    [ Durable.Torn_tail; Durable.Bit_flip ]

let compact_keeps_generations () =
  let d = store (List.init 10 (fun i -> (5, Printf.sprintf "op%d" i))) in
  let g10 = Durable.last_gen d in
  Durable.compact d ~kind:6 ~payload:"snapshot";
  for i = 10 to 12 do
    ignore (Durable.append d ~kind:5 ~payload:(Printf.sprintf "op%d" i))
  done;
  Alcotest.(check int) "tail counts since compact" 4 (Durable.tail_records d);
  let report, recs = Durable.fsck (Durable.contents d) in
  Alcotest.(check int) "snapshot + tail" 4 report.Durable.records_ok;
  Alcotest.(check int) "snapshot kind first" 6 (List.hd recs).Durable.rkind;
  assert ((List.hd recs).Durable.rgen > g10)

(* -- session-level recovery ----------------------------------------- *)

let fleet_of srv sids = List.map (fun sid -> (sid, pane_state (Option.get (Session.vis srv sid)))) sids

let wal_replay_identity () =
  let kernel = boot () in
  let srv = Session.create kernel in
  let s1 = admitted (Session.open_session srv "alice") in
  let s2 = admitted (Session.open_session srv "bob") in
  let p1, _, _ = admitted (Session.vplot srv s1 (fig "3-6")) in
  let p2, _, _ = admitted (Session.vplot srv s2 (fig "7-1")) in
  Session.attach_wal srv (Durable.create ~seed:3 ());
  ignore
    (admitted
       (Session.vctrl srv s1 (Visualinux.Apply { pane = p1.Panel.pid; viewql = ql_collapse })));
  ignore
    (admitted
       (Session.vctrl srv s2
          (Visualinux.Split
             { pane = p2.Panel.pid; dir = `Horizontal; program = fig "11-1" })));
  ignore
    (admitted
       (Session.vctrl srv s2 (Visualinux.Apply { pane = p2.Panel.pid; viewql = ql_collapse })));
  let want = fleet_of srv [ s1; s2 ] in
  let image = Durable.contents (Option.get (Session.wal_of srv)) in
  let srv' = Session.create kernel in
  let rcv = Session.recover_durable srv' image in
  List.iter
    (fun (s : Session.srecovery) ->
      Alcotest.(check bool) "replayed clean" true (s.Session.rsalvage = Session.Replayed))
    rcv.Session.rsessions;
  Alcotest.(check bool) "last_recovery set" true (Session.last_recovery srv' <> None);
  List.iter
    (fun (sid, st) ->
      Alcotest.(check bool)
        (Printf.sprintf "session %d bit-identical (panes, boxes, text)" sid)
        true
        (pane_state (Option.get (Session.vis srv' sid)) = st))
    want

let corrupt_isolation () =
  let kernel = boot () in
  let srv = Session.create kernel in
  let sids =
    List.map (fun n -> admitted (Session.open_session srv n)) [ "a"; "b"; "c" ]
  in
  let panes =
    List.map2
      (fun sid f -> (sid, (fun (p, _, _) -> p.Panel.pid) (admitted (Session.vplot srv sid (fig f)))))
      sids [ "3-6"; "7-1"; "11-1" ]
  in
  Session.attach_wal srv (Durable.create ~seed:5 ());
  (* two journaled ops per session, so every victim has a later op and
     the salvage is typed, not tail-ambiguous *)
  List.iter
    (fun (sid, pane) ->
      ignore (admitted (Session.vctrl srv sid (Visualinux.Apply { pane; viewql = ql_collapse })));
      ignore
        (admitted
           (Session.vctrl srv sid
              (Visualinux.Apply
                 { pane; viewql = "a = SELECT mid FROM *\nUPDATE a WITH collapsed: false" }))))
    panes;
  let want = fleet_of srv sids in
  Alcotest.(check bool) "corruption injected" true (Session.corrupt_wal srv);
  let image = Durable.contents (Option.get (Session.wal_of srv)) in
  let srv' = Session.create kernel in
  let rcv = Session.recover_durable srv' image in
  Alcotest.(check int)
    "fsck skipped the bad run" 1 rcv.Session.rreport.Durable.records_skipped;
  let degraded =
    List.filter (fun (s : Session.srecovery) -> s.Session.rsalvage <> Session.Replayed)
      rcv.Session.rsessions
  in
  Alcotest.(check int) "exactly one session degraded" 1 (List.length degraded);
  (match degraded with
  | [ s ] -> (
      (match s.Session.rsalvage with
      | Session.Salvaged { dropped } -> assert (dropped >= 1)
      | _ -> Alcotest.fail "expected a typed salvage");
      (* data loss is visible: the salvaged session serves [STALE] *)
      match Session.render srv' s.Session.rsid (List.assoc s.Session.rsid panes) with
      | Some txt -> Alcotest.(check bool) "stale tag" true (contains txt "[STALE]")
      | None -> Alcotest.fail "salvaged pane must still render")
  | _ -> assert false);
  (* isolation: every other session is bit-identical to pre-crash *)
  List.iter
    (fun (s : Session.srecovery) ->
      if s.Session.rsalvage = Session.Replayed then
        Alcotest.(check bool)
          (Printf.sprintf "neighbour %d untouched" s.Session.rsid)
          true
          (pane_state (Option.get (Session.vis srv' s.Session.rsid))
          = List.assoc s.Session.rsid want))
    rcv.Session.rsessions

let snapshot_corruption_quarantines () =
  let kernel = boot () in
  let srv = Session.create kernel in
  let sid = admitted (Session.open_session srv "solo") in
  let p, _, _ = admitted (Session.vplot srv sid (fig "3-6")) in
  Session.attach_wal srv (Durable.create ~seed:9 ());
  ignore
    (admitted (Session.vctrl srv sid (Visualinux.Apply { pane = p.Panel.pid; viewql = ql_collapse })));
  let wal = Option.get (Session.wal_of srv) in
  let image = Durable.contents wal in
  (* flip a payload bit of the snapshot record itself: nothing anchors
     the ops any more, so the session comes back a quarantined ghost *)
  let image = Durable.flip_bit image ((15 + 40) * 8) in
  let srv' = Session.create kernel in
  let rcv = Session.recover_durable srv' image in
  List.iter
    (fun (s : Session.srecovery) ->
      Alcotest.(check bool)
        "quarantined ghost" true
        (s.Session.rsalvage = Session.Quarantined_stale))
    rcv.Session.rsessions;
  Alcotest.(check bool) "still one session" true (rcv.Session.rsessions <> [])

let suite =
  [ Alcotest.test_case "record soup round-trips through fsck" `Quick roundtrip;
    Alcotest.test_case "truncation at every offset is survivable" `Quick truncate_everywhere;
    Alcotest.test_case "a flipped bit in any byte never leaks corruption" `Quick
      flip_every_byte;
    QCheck_alcotest.to_alcotest fuzz_fsck_total;
    Alcotest.test_case "lost-flush crash keeps exactly the flushed prefix" `Quick
      sim_lost_flush;
    Alcotest.test_case "torn-tail and bit-flip crashes are deterministic" `Quick
      sim_torn_and_flip;
    Alcotest.test_case "compaction preserves generations and the tail" `Quick
      compact_keeps_generations;
    Alcotest.test_case "recovery replays the fleet bit-identically" `Quick
      wal_replay_identity;
    Alcotest.test_case "journal corruption stays inside the owning session" `Quick
      corrupt_isolation;
    Alcotest.test_case "an unsalvageable snapshot quarantines, never crashes" `Quick
      snapshot_corruption_quarantines ]
