(* Test runner: all suites. *)

let () =
  Alcotest.run "visualinux"
    [ ("kmem", Test_kmem.suite);
      ("ctype", Test_ctype.suite);
      ("target", Test_target.suite);
      ("cexpr", Test_cexpr.suite);
      ("kcontainers", Test_kcontainers.suite);
      ("kmaple", Test_kmaple.suite);
      ("kernel", Test_kernel.suite);
      ("khelpers", Test_khelpers.suite);
      ("faults", Test_faults.suite);
      ("viewcl", Test_viewcl.suite);
      ("viewql", Test_viewql.suite);
      ("transport", Test_transport.suite);
      ("obs", Test_obs.suite);
      ("cache", Test_cache.suite);
      ("sanity", Test_sanity.suite);
      ("render+panel", Test_render_panel.suite);
      ("vchat", Test_vchat.suite);
      ("json+protocol", Test_json_protocol.suite);
      ("session", Test_session.suite);
      ("durable", Test_durable.suite);
      ("par", Test_par.suite);
      ("health", Test_health.suite);
      ("trace", Test_trace.suite);
      ("integration", Test_visualinux.suite) ]
