(* Tests for the renderers and the pane manager. *)

let mk_graph ?(base = 0x1000) () =
  let g = Vgraph.create ~title:"render-test" () in
  let mk ty items =
    let b = Vgraph.add_box g ~btype:ty ~bdef:"" ~addr:(base * (Vgraph.box_count g + 1))
        ~size:32 ~container:false in
    Vgraph.set_view b "default" items;
    b
  in
  let leaf = mk "leaf" [ Vgraph.Text { label = "v"; value = "42"; raw = Vgraph.Fint 42 } ] in
  let mid =
    mk "mid"
      [ Vgraph.Text { label = "name"; value = "middle"; raw = Vgraph.Fstr "middle" };
        Vgraph.Link { label = "down"; target = Some leaf.Vgraph.id } ]
  in
  let root = mk "root" [ Vgraph.Link { label = "next"; target = Some mid.Vgraph.id } ] in
  Vgraph.set_root g root.Vgraph.id;
  (g, root, mid, leaf)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_ascii_contains_all () =
  let g, _, _, _ = mk_graph () in
  let out = Render.ascii g in
  List.iter
    (fun s -> Alcotest.(check bool) ("contains " ^ s) true (contains out s))
    [ "render-test"; "root"; "mid"; "leaf"; "v: 42"; "name: middle"; "(3 boxes, 3 visible)" ]

let test_trimmed_hides_subtree () =
  let g, _, mid, leaf = mk_graph () in
  mid.Vgraph.attrs.Vgraph.trimmed <- true;
  let out = Render.ascii g in
  Alcotest.(check bool) "mid hidden" false (contains out "name: middle");
  Alcotest.(check bool) "leaf hidden too" false (contains out "v: 42");
  Alcotest.(check bool) "root shown" true (contains out "root");
  ignore leaf;
  Alcotest.(check (list int)) "visible set" [ List.hd (Vgraph.roots g) ] (Vgraph.visible g)

let test_collapsed_stub () =
  let g, _, mid, _ = mk_graph () in
  mid.Vgraph.attrs.Vgraph.collapsed <- true;
  let out = Render.ascii g in
  Alcotest.(check bool) "stub" true (contains out "(collapsed)");
  Alcotest.(check bool) "children hidden" false (contains out "v: 42")

let test_view_switch_rendered () =
  let g, root, _, _ = mk_graph () in
  Vgraph.set_view root "alt" [ Vgraph.Text { label = "alt"; value = "yes"; raw = Vgraph.Fstr "" } ];
  root.Vgraph.attrs.Vgraph.view <- "alt";
  let out = Render.ascii g in
  Alcotest.(check bool) "alt view items" true (contains out "alt: yes");
  Alcotest.(check bool) "view marker" true (contains out "(view: alt)")

let test_dot_and_svg () =
  let g, _, _, _ = mk_graph () in
  let dot = Render.dot g in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "edge" true (contains dot "->");
  let svg = Render.svg g in
  Alcotest.(check bool) "svg root" true (contains svg "<svg");
  Alcotest.(check bool) "boxes drawn" true (contains svg "<rect");
  Alcotest.(check bool) "text drawn" true (contains svg "v: 42");
  Alcotest.(check bool) "closed" true (contains svg "</svg>")

let test_json () =
  let g, root, _, _ = mk_graph () in
  let json = Vgraph.to_json g in
  Alcotest.(check bool) "has title" true (contains json "\"render-test\"");
  Alcotest.(check bool) "has root id" true
    (contains json (Printf.sprintf "\"roots\":[%d]" root.Vgraph.id));
  (* balanced braces/brackets *)
  let bal = List.fold_left (fun acc c ->
      match c with '{' | '[' -> acc + 1 | '}' | ']' -> acc - 1 | _ -> acc)
      0 (List.init (String.length json) (String.get json)) in
  Alcotest.(check int) "balanced" 0 bal

(* ---------------- panel ---------------- *)

let test_direction_attribute () =
  let g = Vgraph.create () in
  let c = Vgraph.add_box g ~btype:"List" ~bdef:"" ~addr:0 ~size:0 ~container:true in
  Vgraph.set_view c "default" [];
  let m1 = Vgraph.add_box g ~btype:"x" ~bdef:"" ~addr:1 ~size:0 ~container:false in
  let m2 = Vgraph.add_box g ~btype:"x" ~bdef:"" ~addr:2 ~size:0 ~container:false in
  Vgraph.set_view m1 "default" [];
  Vgraph.set_view m2 "default" [];
  c.Vgraph.members <- [ m1.Vgraph.id; m2.Vgraph.id ];
  Vgraph.set_root g c.Vgraph.id;
  let horiz = Render.ascii g in
  c.Vgraph.attrs.Vgraph.direction <- Vgraph.Vertical;
  let vert = Render.ascii g in
  (* vertical containers list members one per line *)
  Alcotest.(check bool) "outputs differ" true (horiz <> vert);
  Alcotest.(check bool) "vertical is taller" true
    (List.length (String.split_on_char '\n' vert) > List.length (String.split_on_char '\n' horiz))

let test_deep_layout_json () =
  let t = Panel.create () in
  let g1, _, _, _ = mk_graph () in
  let g2, _, _, _ = mk_graph () in
  let g3, _, _, _ = mk_graph () in
  let p1 = Panel.open_primary t ~program:"a" g1 in
  let p2 = Panel.split t ~dir:`Horizontal ~at:p1.Panel.pid ~program:"b" g2 in
  let _p3 = Panel.split t ~dir:`Vertical ~at:p2.Panel.pid ~program:"c" g3 in
  let json = Panel.to_json t in
  (* the layout nests: h(p1, v(p2, p3)) *)
  let j = Json.parse json in
  (match Json.member_exn "layout" j with
  | Json.Obj [ ("h", Json.List [ _; Json.Obj [ ("v", _) ] ]) ] -> ()
  | other -> Alcotest.failf "unexpected layout shape: %s" (Json.to_string other));
  Alcotest.(check int) "three panes serialized" 3
    (List.length (Json.to_list (Json.member_exn "panes" j)))

let test_pane_tree () =
  let t = Panel.create () in
  let g1, _, _, _ = mk_graph () in
  let g2, _, _, _ = mk_graph () in
  let p1 = Panel.open_primary t ~program:"prog1" g1 in
  let p2 = Panel.split t ~dir:`Horizontal ~at:p1.Panel.pid ~program:"prog2" g2 in
  Alcotest.(check int) "two panes" 2 (List.length (Panel.pane_ids t));
  let p3 = Panel.select t ~from:p1.Panel.pid [ 1 ] in
  Alcotest.(check int) "secondary added" 3 (List.length (Panel.pane_ids t));
  (match (Panel.pane t p3.Panel.pid).Panel.kind with
  | Panel.Secondary { source; picked } ->
      Alcotest.(check int) "source" p1.Panel.pid source;
      Alcotest.(check (list int)) "picked" [ 1 ] picked
  | Panel.Primary _ -> Alcotest.fail "expected secondary");
  Panel.close t p2.Panel.pid;
  Alcotest.(check int) "closed" 2 (List.length (Panel.pane_ids t))

let test_refine_and_history () =
  let t = Panel.create () in
  let g, _, mid, _ = mk_graph () in
  let p = Panel.open_primary t ~program:"p" g in
  let n = Panel.refine t ~at:p.Panel.pid "a = SELECT mid FROM *\nUPDATE a WITH collapsed: true" in
  Alcotest.(check int) "updated" 1 n;
  Alcotest.(check bool) "applied" true mid.Vgraph.attrs.Vgraph.collapsed;
  Alcotest.(check int) "history recorded" 1 (List.length p.Panel.history)

let test_focus_across_panes () =
  let t = Panel.create () in
  let g1, root1, _, _ = mk_graph () in
  (* disjoint address ranges so only the planted twin collides *)
  let g2, _, _, _ = mk_graph ~base:0x9000 () in
  (* plant the same address in both graphs *)
  let twin = Vgraph.add_box g2 ~btype:"root" ~bdef:"" ~addr:root1.Vgraph.addr ~size:32
      ~container:false in
  Vgraph.set_view twin "default" [];
  let p1 = Panel.open_primary t ~program:"a" g1 in
  let p2 = Panel.split t ~dir:`Vertical ~at:p1.Panel.pid ~program:"b" g2 in
  let hits = Panel.focus t ~addr:root1.Vgraph.addr in
  Alcotest.(check int) "found in both panes" 2 (List.length hits);
  Alcotest.(check bool) "pane ids" true
    (List.mem p1.Panel.pid (List.map fst hits) && List.mem p2.Panel.pid (List.map fst hits))

let test_secondary_pane_rendering () =
  let t = Panel.create () in
  let g, root, mid, leaf = mk_graph () in
  let p1 = Panel.open_primary t ~program:"p" g in
  (* pick only the mid box into a secondary pane *)
  let p2 = Panel.select t ~from:p1.Panel.pid [ mid.Vgraph.id ] in
  (match (Panel.pane t p2.Panel.pid).Panel.kind with
  | Panel.Secondary { picked; _ } ->
      let out = Render.ascii ~roots:picked g in
      Alcotest.(check bool) "mid shown" true (contains out "name: middle");
      Alcotest.(check bool) "leaf reachable from pick" true (contains out "v: 42");
      Alcotest.(check bool) "root excluded" false
        (contains out (Printf.sprintf "#%d <root" root.Vgraph.id))
  | Panel.Primary _ -> Alcotest.fail "expected secondary");
  ignore leaf

let test_persistence () =
  let t = Panel.create () in
  let g, _, _, _ = mk_graph () in
  let p = Panel.open_primary t ~program:"define X..." g in
  ignore (Panel.refine t ~at:p.Panel.pid "a = SELECT root FROM *\nUPDATE a WITH collapsed: true");
  let saved = Panel.saved_programs t in
  Alcotest.(check int) "one primary saved" 1 (List.length saved);
  let prog, hist = List.hd saved in
  Alcotest.(check string) "program" "define X..." prog;
  Alcotest.(check int) "history" 1 (List.length hist);
  let json = Panel.to_json t in
  Alcotest.(check bool) "layout serialized" true (contains json "\"leaf\"")

let test_multi_tag_order () =
  (* status tags compose deterministically: [BROKEN], then [TORN], then
     [SUSPECT:<law>] sorted by law — whatever order the marks landed *)
  let g = Vgraph.create () in
  let b = Vgraph.add_box g ~btype:"task_struct" ~bdef:"T" ~addr:0x1000 ~size:64 ~container:false in
  Vgraph.set_view b "default" [];
  Vgraph.set_root g b.Vgraph.id;
  Vgraph.mark_suspect b ~law:"rbtree" "red-red edge";
  Vgraph.mark_broken b "read fault";
  Vgraph.mark_suspect b ~law:"list" "no closure";
  Vgraph.mark_torn b "raced by a writer";
  let out = Render.ascii g in
  Alcotest.(check bool) "composed in order" true
    (contains out "[BROKEN] [TORN] [SUSPECT:list] [SUSPECT:rbtree]")

let suite =
  [ Alcotest.test_case "ascii shows everything" `Quick test_ascii_contains_all;
    Alcotest.test_case "multi-tag composition order" `Quick test_multi_tag_order;
    Alcotest.test_case "trimmed hides subtree" `Quick test_trimmed_hides_subtree;
    Alcotest.test_case "collapsed stub" `Quick test_collapsed_stub;
    Alcotest.test_case "view switch rendered" `Quick test_view_switch_rendered;
    Alcotest.test_case "dot + svg" `Quick test_dot_and_svg;
    Alcotest.test_case "json serialization" `Quick test_json;
    Alcotest.test_case "direction attribute" `Quick test_direction_attribute;
    Alcotest.test_case "deep layout json" `Quick test_deep_layout_json;
    Alcotest.test_case "pane tree ops" `Quick test_pane_tree;
    Alcotest.test_case "refine + history" `Quick test_refine_and_history;
    Alcotest.test_case "cross-pane focus" `Quick test_focus_across_panes;
    Alcotest.test_case "secondary pane rendering" `Quick test_secondary_pane_rendering;
    Alcotest.test_case "session persistence" `Quick test_persistence ]
