(* Parallel extraction: the cross-domain identity contract, pool
   semantics (batches, streaming, charge), and the schedule model. *)

let figs () =
  List.filter
    (fun (sc : Scripts.script) -> List.mem sc.Scripts.fig [ "3-6"; "4-5"; "19-1/2" ])
    Scripts.table2

type outcome = {
  renders : string list;
  journal : string list;
  reads : int;
  bytes : int;
  fired : int;
}

(* One full extraction pass over a fresh kernel, mirroring the bench's
   par harness: kgdb-priced transport, optional split chaos, optional
   read-failure injection, every figure plotted through [pool]. *)
let run_figs ~pool_size ~chaos ~inject () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run ~iters:12 w;
  let tr = Transport.create ~seed:7 Target.kgdb_rpi400 in
  let s = Visualinux.attach ~transport:tr k in
  let tgt = s.Visualinux.target in
  let pool = Viewcl.Dpool.create pool_size in
  let c =
    if chaos then begin
      let c = Workload.Chaos.create ~seed:11 w ~rate:0.3 in
      Workload.Chaos.arm_split c tgt;
      Some c
    end
    else None
  in
  if inject then Kmem.inject_read_failures k.Kstate.ctx.Kcontext.mem ~seed:5 0.02;
  let renders =
    List.map
      (fun (sc : Scripts.script) ->
        match Viewcl.run ~cfg:s.Visualinux.cfg ~pool tgt sc.Scripts.source with
        | res -> Render.ascii res.Viewcl.graph
        | exception Viewcl.Error e -> "ERROR: " ^ e)
      (figs ())
  in
  if chaos then Workload.Chaos.disarm tgt;
  if inject then Kmem.clear_injection k.Kstate.ctx.Kcontext.mem;
  let st = Target.stats tgt in
  let r =
    { renders;
      journal = List.map Target.fault_to_string (Target.faults tgt);
      reads = st.Target.reads;
      bytes = st.Target.bytes;
      fired =
        (match c with
        | Some c -> Workload.Chaos.fired c + Workload.Chaos.split_fired c
        | None -> 0) }
  in
  Viewcl.Dpool.shutdown pool;
  r

let check_identity name a b =
  Alcotest.(check (list string)) (name ^ ": renders") a.renders b.renders;
  Alcotest.(check (list string)) (name ^ ": journal") a.journal b.journal;
  Alcotest.(check int) (name ^ ": reads") a.reads b.reads;
  Alcotest.(check int) (name ^ ": bytes") a.bytes b.bytes;
  Alcotest.(check int) (name ^ ": fired") a.fired b.fired

let test_identity_plain () =
  let r1 = run_figs ~pool_size:1 ~chaos:false ~inject:false () in
  let r2 = run_figs ~pool_size:2 ~chaos:false ~inject:false () in
  let r4 = run_figs ~pool_size:4 ~chaos:false ~inject:false () in
  check_identity "1v2" r1 r2;
  check_identity "1v4" r1 r4;
  (* the classic unsharded interpreter is a third route to the same
     renders: lane merge must be invisible in the graph *)
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run ~iters:12 w;
  let s = Visualinux.attach k in
  let seq =
    List.map
      (fun (sc : Scripts.script) ->
        Render.ascii
          (Viewcl.run ~cfg:s.Visualinux.cfg s.Visualinux.target sc.Scripts.source)
            .Viewcl.graph)
      (figs ())
  in
  Alcotest.(check (list string)) "seq = pooled renders" seq r1.renders

let test_identity_chaos () =
  let r1 = run_figs ~pool_size:1 ~chaos:true ~inject:false () in
  let r4 = run_figs ~pool_size:4 ~chaos:true ~inject:false () in
  check_identity "chaos 1v4" r1 r4;
  Alcotest.(check bool) "chaos actually fired" true (r1.fired > 0)

let test_identity_inject () =
  let r1 = run_figs ~pool_size:1 ~chaos:false ~inject:true () in
  let r4 = run_figs ~pool_size:4 ~chaos:false ~inject:true () in
  check_identity "inject 1v4" r1 r4;
  Alcotest.(check bool) "injection left a journal" true (List.length r1.journal > 0)

(* ---------------- pool semantics ---------------- *)

let test_run_order_and_steals () =
  let p = Viewcl.Dpool.create 4 in
  let res = Viewcl.Dpool.run p (List.init 100 (fun i () -> i * i)) in
  Alcotest.(check (list int)) "results in submission order" (List.init 100 (fun i -> i * i)) res;
  Alcotest.(check int) "all tasks executed" 100 (Viewcl.Dpool.executed p);
  Viewcl.Dpool.shutdown p;
  let p1 = Viewcl.Dpool.create 1 in
  ignore (Viewcl.Dpool.run p1 (List.init 10 (fun i () -> i)));
  Alcotest.(check int) "1-pool never steals" 0 (Viewcl.Dpool.steals p1);
  Viewcl.Dpool.shutdown p1

exception Boom of int

let test_exception_propagation () =
  let p = Viewcl.Dpool.create 2 in
  (match
     Viewcl.Dpool.run p
       (List.init 10 (fun i () -> if i >= 4 then raise (Boom i) else i))
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest-index exception wins" 4 i);
  Viewcl.Dpool.shutdown p

let test_batch_streaming () =
  let p = Viewcl.Dpool.create 3 in
  let b = Viewcl.Dpool.batch p in
  List.iter (fun i -> Viewcl.Dpool.add b (fun () -> 2 * i)) (List.init 25 (fun i -> i));
  Alcotest.(check (list int)) "join keeps submission order"
    (List.init 25 (fun i -> 2 * i))
    (Viewcl.Dpool.join b);
  Viewcl.Dpool.shutdown p

let test_charge_and_record () =
  let p = Viewcl.Dpool.create 1 in
  ignore (Viewcl.Dpool.run p [ (fun () -> Viewcl.Dpool.charge 250.) ]);
  Viewcl.Dpool.record p 40.;
  (match Viewcl.Dpool.timings p with
  | [ t1; t2 ] ->
      Alcotest.(check bool) "charge folded into task timing" true (Float.max t1 t2 >= 250.);
      Alcotest.(check bool) "record appends a pseudo-task" true (Float.min t1 t2 = 40.)
  | l -> Alcotest.failf "expected 2 timings, got %d" (List.length l));
  Viewcl.Dpool.shutdown p

let test_clock_concurrent_monotone () =
  let worst = Atomic.make 0. in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let prev = ref (Obs.Clock.now_ms ()) in
            for _ = 1 to 10_000 do
              let t = Obs.Clock.now_ms () in
              if t < !prev then Atomic.set worst (!prev -. t);
              prev := t
            done;
            !prev))
  in
  let finals = List.map Domain.join domains in
  Alcotest.(check (float 0.)) "no domain saw time go backwards" 0. (Atomic.get worst);
  let now = Obs.Clock.now_ms () in
  List.iter (fun f -> Alcotest.(check bool) "running max holds" true (now >= f)) finals

(* ---------------- schedule model ---------------- *)

let test_model_speedup_math () =
  let feq name a b = Alcotest.(check (float 1e-9)) name a b in
  feq "1 domain is the baseline" 1.0
    (Viewcl.Dpool.model_speedup ~domains:1 ~serial_ms:100. [ 50. ]);
  feq "empty batch" 1.0 (Viewcl.Dpool.model_speedup ~domains:4 ~serial_ms:100. []);
  feq "perfect split" 2.0
    (Viewcl.Dpool.model_speedup ~domains:2 ~serial_ms:100. [ 25.; 25.; 25.; 25. ]);
  (* 20ms serial remainder + 40ms makespan *)
  feq "amdahl remainder" (100. /. 60.)
    (Viewcl.Dpool.model_speedup ~domains:2 ~serial_ms:100. [ 40.; 40. ])

let prop_model_bounded =
  QCheck.Test.make ~count:200 ~name:"model speedup stays within [1, domains]"
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(int_range 1 40) (float_range 0.1 50.)))
    (fun (domains, busy) ->
      let total = List.fold_left ( +. ) 0. busy in
      let m = Viewcl.Dpool.model_speedup ~domains ~serial_ms:(total +. 10.) busy in
      m >= 1.0 && m <= float_of_int domains +. 1e-9)

let suite =
  [ Alcotest.test_case "identity: plain, domains 1/2/4 + seq" `Quick test_identity_plain;
    Alcotest.test_case "identity: split chaos, domains 1/4" `Quick test_identity_chaos;
    Alcotest.test_case "identity: injection, domains 1/4" `Quick test_identity_inject;
    Alcotest.test_case "pool: run order, executed, steals" `Quick test_run_order_and_steals;
    Alcotest.test_case "pool: lowest-index exception" `Quick test_exception_propagation;
    Alcotest.test_case "pool: streamed batch join" `Quick test_batch_streaming;
    Alcotest.test_case "pool: charge + record timings" `Quick test_charge_and_record;
    Alcotest.test_case "clock: concurrent running max" `Quick test_clock_concurrent_monotone;
    Alcotest.test_case "model: LPT + amdahl arithmetic" `Quick test_model_speedup_math;
    QCheck_alcotest.to_alcotest prop_model_bounded ]
