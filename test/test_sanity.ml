(* Unit + property tests for ISSUE 4: Kmem write generations, Target
   consistent sections, torn-extraction retry, the structural sanitizer
   and the chaos harness. *)

let ctx () = Kcontext.create ()
let target_of c = Target.create c.Kcontext.mem c.Kcontext.reg

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Kmem write generations *)

let prop_generation_monotone =
  QCheck.Test.make ~name:"write generations advance monotonically" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 7)))
    (fun ops ->
      let m = Kmem.create () in
      let objs = Array.init 8 (fun _ -> Kmem.alloc m ~tag:"o" 64) in
      let ok = ref true in
      let last = ref (Kmem.generation m) in
      List.iter
        (fun (op, i) ->
          (match op with
          | 0 -> Kmem.write_u8 m objs.(i) 0xaa
          | 1 -> Kmem.write_u64 m (objs.(i) + 8) 42
          | 2 -> Kmem.write_bytes m objs.(i) "xyzzy"
          | _ -> ignore (Kmem.read_u64 m objs.(i)));
          let g = Kmem.generation m in
          (* never decreases; writes strictly advance; reads don't *)
          if g < !last then ok := false;
          if op <= 2 && g <= !last then ok := false;
          if op > 2 && g <> !last then ok := false;
          last := g;
          (* a page stamp never exceeds the global generation *)
          if Kmem.page_generation m (objs.(i) lsr Kmem.page_bits) > g then ok := false)
        ops;
      !ok)

let test_range_generation_is_max () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~align:4096 ~tag:"a" 4096 in
  let b = Kmem.alloc m ~align:4096 ~tag:"b" 4096 in
  Kmem.write_u64 m a 1;
  Kmem.write_u64 m b 2;
  let pa = a lsr Kmem.page_bits and pb = b lsr Kmem.page_bits in
  Alcotest.(check bool) "later write -> later stamp" true
    (Kmem.page_generation m pb > Kmem.page_generation m pa);
  let lo = min a b in
  let len = abs (b - a) + 4096 in
  Alcotest.(check int) "range stamp = max page stamp"
    (max (Kmem.page_generation m pa) (Kmem.page_generation m pb))
    (Kmem.range_generation m lo len)

(* ------------------------------------------------------------------ *)
(* Target consistent sections *)

let read_pid tgt a =
  Target.as_int tgt (Target.member tgt (Target.obj (Ctype.Named "task_struct") a) "pid")

let test_section_clean () =
  let c = ctx () in
  let tgt = target_of c in
  let a = Kcontext.alloc c "task_struct" in
  Kcontext.w32 c a "task_struct" "pid" 42;
  let (), dirty = Target.consistent tgt (fun () -> ignore (read_pid tgt a)) in
  Alcotest.(check (list (pair int int))) "no writer, no tear" [] dirty

let test_section_torn_after_read () =
  let c = ctx () in
  let tgt = target_of c in
  let a = Kcontext.alloc c "task_struct" in
  let (), dirty =
    Target.consistent tgt (fun () ->
        ignore (read_pid tgt a);
        (* a writer races the walk after our first read of the page *)
        Kcontext.w32 c a "task_struct" "pid" 7)
  in
  Alcotest.(check bool) "read page dirtied" true (dirty <> []);
  let lo, hi = List.hd dirty in
  Alcotest.(check bool) "torn range covers the object" true (lo <= a && a < hi)

let test_section_snapshot_mixing () =
  (* mutation between section open and the page's first read must still
     dirty the section (the snapshot mixes pre- and post-write state) *)
  let c = ctx () in
  let tgt = target_of c in
  let a = Kcontext.alloc c "task_struct" in
  let (), dirty =
    Target.consistent tgt (fun () ->
        Kcontext.w32 c a "task_struct" "pid" 7;
        ignore (read_pid tgt a))
  in
  Alcotest.(check bool) "pre-read mutation detected" true (dirty <> [])

let test_section_unrelated_page_clean () =
  let c = ctx () in
  let tgt = target_of c in
  let a = Kcontext.alloc ~align:4096 c "task_struct" in
  let b = Kcontext.alloc ~align:4096 c "task_struct" in
  let (), dirty =
    Target.consistent tgt (fun () ->
        ignore (read_pid tgt a);
        (* writer on a page this section never read: not a tear *)
        Kcontext.w32 c b "task_struct" "pid" 9)
  in
  Alcotest.(check (list (pair int int))) "unread page ignored" [] dirty

let test_torn_fault_recorded () =
  let c = ctx () in
  let tgt = target_of c in
  let a = Kcontext.alloc c "task_struct" in
  let _, faults =
    Target.with_faults tgt (fun () ->
        Target.consistent tgt (fun () ->
            ignore (read_pid tgt a);
            Kcontext.w32 c a "task_struct" "pid" 7))
  in
  let torn = List.filter (function Target.Torn _ -> true | _ -> false) faults in
  Alcotest.(check int) "one Torn fault" 1 (List.length torn);
  match torn with
  | [ Target.Torn { lo; hi } ] ->
      Alcotest.(check bool) "fault names the dirtied range" true (lo <= a && a < hi)
  | _ -> Alcotest.fail "expected Torn"

let prop_torn_soundness =
  QCheck.Test.make ~name:"section dirty iff a read page was mutated" ~count:100
    QCheck.(pair bool bool)
    (fun (mutate_read, mutate_other) ->
      let c = ctx () in
      let tgt = target_of c in
      let a = Kcontext.alloc ~align:4096 c "task_struct" in
      let b = Kcontext.alloc ~align:4096 c "task_struct" in
      let (), dirty =
        Target.consistent tgt (fun () ->
            ignore (read_pid tgt a);
            if mutate_read then Kcontext.w32 c a "task_struct" "pid" 1;
            if mutate_other then Kcontext.w32 c b "task_struct" "pid" 2)
      in
      dirty <> [] = mutate_read)

(* ------------------------------------------------------------------ *)
(* Torn-box retry at the ViewCL layer *)

let boot_session () =
  let kernel = Kstate.boot () in
  let w = Workload.create ~seed:7 kernel in
  Workload.run w;
  (kernel, w, Visualinux.attach kernel)

let test_torn_box_degrades () =
  (* a writer that dirties the target task on every read defeats every
     retry: the affected boxes degrade to [TORN] instead of raising *)
  let kernel, _, s = boot_session () in
  let ctx = kernel.Kstate.ctx in
  let task = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  let n = ref 0 in
  Target.set_read_hook s.Visualinux.target
    (Some
       (fun () ->
         incr n;
         Kcontext.w64 ctx task "task_struct" "se.vruntime" (1000 + !n)));
  let sc = Option.get (Scripts.find "7-1") in
  let pane, res, _ = Visualinux.plot_figure s sc in
  Target.set_read_hook s.Visualinux.target None;
  Alcotest.(check bool) "sections tore" true (res.Viewcl.torn > 0);
  Alcotest.(check bool) "retries happened" true (res.Viewcl.retried > 0);
  Alcotest.(check bool) "some box stayed torn" true (res.Viewcl.torn_boxes > 0);
  let out = Option.get (Visualinux.render_pane s pane.Panel.pid) in
  Alcotest.(check bool) "[TORN] rendered" true (contains out "[TORN]")

let chaos_run () =
  let kernel, w, s = boot_session () in
  let c = Workload.Chaos.create ~seed:99 w ~rate:0.1 in
  Workload.Chaos.arm c s.Visualinux.target;
  let sc = Option.get (Scripts.find "7-1") in
  let _, res, _ = Visualinux.plot_figure s sc in
  Workload.Chaos.disarm s.Visualinux.target;
  ignore kernel;
  ( Workload.Chaos.fired c,
    ((res.Viewcl.torn, res.Viewcl.retried), (res.Viewcl.repaired, res.Viewcl.torn_boxes)),
    Render.ascii res.Viewcl.graph )

let test_chaos_deterministic () =
  let f1, c1, out1 = chaos_run () in
  let f2, c2, out2 = chaos_run () in
  Alcotest.(check int) "same mutations fired" f1 f2;
  Alcotest.(check (pair (pair int int) (pair int int)))
    "same torn/retried/repaired/torn-box counts" c1 c2;
  Alcotest.(check string) "same rendered plot" out1 out2

(* ------------------------------------------------------------------ *)
(* Structural sanitizer: corrupted-structure verdicts *)

(* rbtree of sched_entity keyed by vruntime, as the CFS runqueue does *)
let insert_se c root key =
  let se = Kcontext.alloc c "sched_entity" in
  Kcontext.w64 c se "sched_entity" "vruntime" key;
  let node = Kcontext.fld c se "sched_entity" "run_node" in
  let key_of n = Kcontext.r64 c (n - Kcontext.off c "sched_entity" "run_node") "sched_entity" "vruntime" in
  let less a b = key_of a < key_of b in
  ignore (Krbtree.insert c root ~less node);
  se

let paint_red c n =
  let pc = Kcontext.r64 c n "rb_node" "__rb_parent_color" in
  Kcontext.w64 c n "rb_node" "__rb_parent_color" (pc land lnot 1)

let test_rbtree_red_red_verdict () =
  let c = ctx () in
  let root = Kcontext.alloc c "rb_root" in
  List.iter (fun k -> ignore (insert_se c root k)) [ 50; 20; 80; 10; 30; 70; 90; 25; 15 ];
  (match Krbtree.check c root with
  | Ok bh -> Alcotest.(check bool) "intact tree passes" true (bh > 0)
  | Error m -> Alcotest.fail m);
  (* a red-red edge: paint the root and its left child red *)
  let top = Krbtree.root_node c root in
  paint_red c top;
  (match Krbtree.left c top with 0 -> () | l -> paint_red c l);
  (match Krbtree.check c root with
  | Ok _ -> Alcotest.fail "red-red corruption missed"
  | Error _ -> ());
  (* and through the sanitizer registry on a graph box *)
  let g = Vgraph.create () in
  let b = Vgraph.add_box g ~btype:"rb_root" ~bdef:"" ~addr:root ~size:0 ~container:false in
  Vgraph.set_view b "default" [];
  Vgraph.set_root g b.Vgraph.id;
  (match Sanity.check_graph c g with
  | [ v ] ->
      Alcotest.(check string) "law" "rbtree" v.Sanity.law;
      Alcotest.(check int) "subject" root v.Sanity.subject
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs)));
  Alcotest.(check bool) "box marked suspect" true (Vgraph.suspects b <> []);
  Alcotest.(check bool) "tag rendered" true (contains (Render.ascii g) "[SUSPECT:rbtree]")

let test_rbtree_leftmost_cache_verdict () =
  let c = ctx () in
  let croot = Kcontext.alloc c "rb_root_cached" in
  let key_of n = Kcontext.r64 c (n - Kcontext.off c "sched_entity" "run_node") "sched_entity" "vruntime" in
  let less a b = key_of a < key_of b in
  List.iter
    (fun k ->
      let se = Kcontext.alloc c "sched_entity" in
      Kcontext.w64 c se "sched_entity" "vruntime" k;
      Krbtree.insert_cached c croot ~less (Kcontext.fld c se "sched_entity" "run_node"))
    [ 5; 3; 9; 1; 7 ];
  let g = Vgraph.create () in
  let b =
    Vgraph.add_box g ~btype:"rb_root_cached" ~bdef:"" ~addr:croot ~size:0 ~container:false
  in
  ignore b;
  Alcotest.(check int) "intact cache passes" 0 (List.length (Sanity.check_graph c g));
  (* scribble the leftmost cache: tree still legal, cache law violated *)
  Kcontext.w64 c croot "rb_root_cached" "rb_leftmost" 0xdead000;
  match Sanity.check_graph c g with
  | [ v ] ->
      Alcotest.(check string) "law" "rbtree" v.Sanity.law;
      Alcotest.(check bool) "names the cache" true (contains v.Sanity.reason "leftmost")
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))

let test_maple_pivot_verdict () =
  let c = ctx () in
  let mt = Kcontext.alloc c "maple_tree" in
  let t = Kmaple.create c mt in
  let entry n = Kmem.kernel_base + 0x100000 + (n * 64) in
  Kmaple.store_range t ~lo:0x1000 ~hi:0x1fff (entry 1);
  Kmaple.store_range t ~lo:0x3000 ~hi:0x4fff (entry 2);
  Kmaple.store_range t ~lo:0x8000 ~hi:0x8fff (entry 3);
  (match Kmaple.check c mt with
  | Ok n -> Alcotest.(check bool) "intact tree passes" true (n > 0)
  | Error m -> Alcotest.fail m);
  (* break pivot monotonicity in the root leaf: raise pivot[0] past
     pivot[1], so slot 1 spans a negative range (pivot 0 itself is the
     end-of-node sentinel, so we corrupt upward, not to zero) *)
  let enc = Kcontext.r64 c mt "maple_tree" "ma_root" in
  Alcotest.(check bool) "root is a leaf node" true (Kmaple.is_node enc && Kmaple.is_leaf enc);
  let node = Kmaple.to_node enc in
  let pivot1 = Kmaple.leaf_pivot c node 1 in
  Alcotest.(check bool) "pivot[1] in use" true (pivot1 > 0);
  Kmem.write_u64 c.Kcontext.mem
    (Kcontext.fld c node "maple_node" "mr64" + Kcontext.off c "maple_range_64" "pivot")
    (pivot1 + 1);
  (match Kmaple.check c mt with
  | Ok _ -> Alcotest.fail "pivot corruption missed"
  | Error _ -> ());
  let g = Vgraph.create () in
  ignore (Vgraph.add_box g ~btype:"maple_tree" ~bdef:"" ~addr:mt ~size:0 ~container:false);
  match Sanity.check_graph c g with
  | [ v ] -> Alcotest.(check string) "law" "maple" v.Sanity.law
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))

let test_list_symmetry_verdict () =
  let c = ctx () in
  let head = Kcontext.alloc c "list_head" in
  Klist.init c head;
  let n1 = Kcontext.alloc c "list_head" and n2 = Kcontext.alloc c "list_head" in
  Klist.add_tail c head n1;
  Klist.add_tail c head n2;
  let g = Vgraph.create () in
  ignore (Vgraph.add_box g ~btype:"list_head" ~bdef:"" ~addr:head ~size:0 ~container:false);
  Alcotest.(check int) "intact ring passes" 0 (List.length (Sanity.check_graph c g));
  (* break prev/next symmetry *)
  Kcontext.w64 c n2 "list_head" "prev" head;
  match Sanity.check_graph c g with
  | [ v ] ->
      Alcotest.(check string) "law" "list" v.Sanity.law;
      Alcotest.(check bool) "names the asymmetry" true (contains v.Sanity.reason "prev")
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))

let test_registry_pluggable () =
  let c = ctx () in
  let g = Vgraph.create () in
  let b = Vgraph.add_box g ~btype:"widget" ~bdef:"" ~addr:0x1000 ~size:0 ~container:false in
  ignore b;
  Sanity.register
    {
      Sanity.law = "widget";
      applies = (fun b -> b.Vgraph.btype = "widget");
      run = (fun _ _ -> Error "always suspect");
    };
  let vs = Sanity.check_graph c g in
  Sanity.reset ();
  (match vs with
  | [ v ] -> Alcotest.(check string) "custom law ran" "widget" v.Sanity.law
  | _ -> Alcotest.fail "custom checker did not run");
  Alcotest.(check int) "reset restores builtins" 0 (List.length (Sanity.check_graph c g))

(* ------------------------------------------------------------------ *)
(* vverify end to end: a hand-corrupted runqueue rbtree is flagged *)

let test_vverify_flags_corrupted_rbtree () =
  let kernel, _, s = boot_session () in
  let ctx = kernel.Kstate.ctx in
  let sc = Option.get (Scripts.find "7-1") in
  let pane, res, _ = Visualinux.plot_figure s sc in
  (* the RBTree container box carries the walked rb_root_cached *)
  let cont =
    List.find
      (fun b -> b.Vgraph.container && b.Vgraph.addr <> 0)
      (Vgraph.boxes res.Viewcl.graph)
  in
  Alcotest.(check int) "clean tree: no verdicts" 0
    (List.length (Option.get (Visualinux.vverify s ~pane:pane.Panel.pid)));
  (* hand-corrupt: a red-red edge at the root of the runqueue tree *)
  let root = Krbtree.cached_root ctx cont.Vgraph.addr in
  let top = Krbtree.root_node ctx root in
  paint_red ctx top;
  (match Krbtree.left ctx top with 0 -> () | l -> paint_red ctx l);
  let verdicts = Option.get (Visualinux.vverify s ~pane:pane.Panel.pid) in
  Alcotest.(check bool) "rbtree verdict" true
    (List.exists (fun (v : Sanity.verdict) -> v.Sanity.law = "rbtree") verdicts);
  let out = Option.get (Visualinux.render_pane s pane.Panel.pid) in
  Alcotest.(check bool) "[SUSPECT:rbtree] rendered" true (contains out "[SUSPECT:rbtree]")

(* ------------------------------------------------------------------ *)

let suite =
  [ QCheck_alcotest.to_alcotest prop_generation_monotone;
    Alcotest.test_case "range generation is max of pages" `Quick test_range_generation_is_max;
    Alcotest.test_case "clean section" `Quick test_section_clean;
    Alcotest.test_case "torn after read" `Quick test_section_torn_after_read;
    Alcotest.test_case "snapshot mixing detected" `Quick test_section_snapshot_mixing;
    Alcotest.test_case "unrelated page ignored" `Quick test_section_unrelated_page_clean;
    Alcotest.test_case "Torn fault names the range" `Quick test_torn_fault_recorded;
    QCheck_alcotest.to_alcotest prop_torn_soundness;
    Alcotest.test_case "torn box degrades, never raises" `Quick test_torn_box_degrades;
    Alcotest.test_case "chaos is deterministic under a seed" `Quick test_chaos_deterministic;
    Alcotest.test_case "red-red rbtree verdict" `Quick test_rbtree_red_red_verdict;
    Alcotest.test_case "stale leftmost cache verdict" `Quick test_rbtree_leftmost_cache_verdict;
    Alcotest.test_case "maple pivot verdict" `Quick test_maple_pivot_verdict;
    Alcotest.test_case "list symmetry verdict" `Quick test_list_symmetry_verdict;
    Alcotest.test_case "registry is pluggable" `Quick test_registry_pluggable;
    Alcotest.test_case "vverify flags corrupted rbtree" `Quick test_vverify_flags_corrupted_rbtree ]
