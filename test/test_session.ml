(* The multi-session server (ISSUE 6): fault isolation (one session's
   fault storm/breaker-Open leaves other sessions' rendered bytes,
   fault journals and counters identical to solo runs), typed admission
   control (capacity, budgets, quarantine — never an exception),
   degradation-fair scheduling, journal compaction replay-equivalence,
   and crash-safe fleet recovery. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Graph identity up to box-id renumbering, minus the obs footer. *)
let canonical g =
  let g' = Vgraph.renumber g in
  Vgraph.set_title g' "identity";
  Render.ascii g'
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (String.length l >= 5 && String.sub l 0 5 = "[obs:"))
  |> String.concat "\n"

let boot () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  k

let fig name = (Option.get (Scripts.find name)).Scripts.source
let ql_collapse = "a = SELECT mid FROM *\nUPDATE a WITH collapsed: true"

let pane_state vis =
  List.map
    (fun id ->
      let p = Panel.pane vis.Visualinux.panel id in
      (id, List.map (fun b -> b.Vgraph.id) (Vgraph.boxes p.Panel.graph), canonical p.Panel.graph))
    (Panel.pane_ids vis.Visualinux.panel)

let admitted = function
  | Session.Admitted x -> x
  | Session.Rejected { reason } ->
      Alcotest.failf "unexpected rejection: %s" (Session.reason_to_string reason)

(* ------------------------------------------------------------------ *)
(* Journal compaction: replay equivalence *)

(* Random op soup over a small id space: plenty of dangling references,
   open/close churn and panes that survive. *)
let op_gen =
  QCheck.Gen.(
    let id = int_range 1 8 in
    list_size (int_range 0 40)
      (frequency
         [ (3, return (Panel.Jopen { program = "p" }));
           ( 2,
             map2
               (fun at h ->
                 Panel.Jsplit
                   { dir = (if h then `Horizontal else `Vertical); at; program = "q" })
               id bool );
           (2, map (fun from_ -> Panel.Jselect { from_; picked = [] }) id);
           (2, map (fun at -> Panel.Jrefine { at; viewql = ql_collapse }) id);
           (3, map (fun id -> Panel.Jclose { id }) id) ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Panel.Jopen _ -> "open"
             | Panel.Jsplit { at; _ } -> Printf.sprintf "split@%d" at
             | Panel.Jselect { from_; _ } -> Printf.sprintf "sel@%d" from_
             | Panel.Jrefine { at; _ } -> Printf.sprintf "ref@%d" at
             | Panel.Jclose { id } -> Printf.sprintf "close@%d" id
             | Panel.Jreserve { n } -> Printf.sprintf "skip%d" n)
           ops))
    op_gen

let compaction_replay_equivalence =
  QCheck.Test.make ~name:"compacted journal replays to the identical panel" ~count:200
    arb_ops
    (fun ops ->
      let extract _ = Some (Vgraph.create ()) in
      let t1, _ = Panel.recover ~extract ops in
      let compacted = Panel.compact_journal ops in
      let t2, _ = Panel.recover ~extract compacted in
      List.length compacted <= List.length ops
      && Panel.pane_ids t1 = Panel.pane_ids t2
      && Panel.to_json t1 = Panel.to_json t2)

let test_compaction_drops_churn () =
  (* open/close churn around one survivor: everything but the survivor's
     ops and one coalesced reserve must go *)
  let churn i = [ Panel.Jopen { program = "x" }; Panel.Jclose { id = i } ] in
  let ops = List.concat (List.init 10 (fun i -> churn (i + 1))) @ [ Panel.Jopen { program = "keep" } ] in
  let compacted = Panel.compact_journal ops in
  Alcotest.(check int) "churn collapses to reserve + survivor" 2 (List.length compacted);
  (match compacted with
  | [ Panel.Jreserve { n }; Panel.Jopen { program } ] ->
      Alcotest.(check int) "reserve skips all churned ids" 10 n;
      Alcotest.(check string) "survivor kept" "keep" program
  | _ -> Alcotest.fail "expected [reserve; open]");
  let extract _ = Some (Vgraph.create ()) in
  let t, _ = Panel.recover ~extract compacted in
  Alcotest.(check (list int)) "survivor keeps its original id" [ 11 ] (Panel.pane_ids t)

let test_auto_compaction_bounds_journal () =
  let t = Panel.create () in
  Panel.set_journal_limit t (Some 8);
  for _ = 1 to 50 do
    let p = Panel.open_primary t ~program:"x" (Vgraph.create ()) in
    Panel.close t p.Panel.pid
  done;
  Alcotest.(check bool) "journal stays bounded under churn" true
    (List.length (Panel.journal t) <= 10);
  let p = Panel.open_primary t ~program:"live" (Vgraph.create ()) in
  Alcotest.(check int) "ids keep advancing past reserved ranges" 51 p.Panel.pid;
  let t2, _ = Panel.recover ~extract:(fun _ -> Some (Vgraph.create ())) (Panel.journal t) in
  Alcotest.(check (list int)) "recovery reproduces the surviving pane id" [ 51 ]
    (Panel.pane_ids t2)

(* ------------------------------------------------------------------ *)
(* Fault isolation: a storm in one session leaves another bit-identical *)

(* Drive the same op sequence for the observed session in both servers;
   the second server also hosts a storming neighbour interleaved
   between every step. *)
let isolation_under_fault_storm =
  QCheck.Test.make ~name:"fault storm in one session: neighbour bit-identical to solo"
    ~count:3
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let kernel = boot () in
      let mk_server () =
        let srv = Session.create kernel in
        let policy =
          { Transport.default_policy with Transport.breaker_threshold = 1_000_000 }
        in
        let tr = Transport.create ~seed ~policy Transport.qemu_local in
        Session.add_target srv ~transport:tr "wire";
        srv
      in
      let observe srv sid =
        ( pane_state (Option.get (Session.vis srv sid)),
          Session.fault_journal srv sid |> List.map Target.fault_to_string,
          Session.counters srv sid )
      in
      (* solo run *)
      let solo = mk_server () in
      let a = admitted (Session.open_session ~target:"wire" solo "alice") in
      Target.set_read_cache (Option.get (Session.vis solo a)).Visualinux.target false;
      let steps srv sid storm =
        let pane, _, _ = admitted (Session.vplot srv sid ~title:"t" (fig "3-4")) in
        storm ();
        ignore (admitted (Session.vctrl srv sid (Visualinux.Apply { pane = pane.Panel.pid; viewql = ql_collapse })));
        storm ();
        ignore (admitted (Session.vrefresh srv sid ~pane:pane.Panel.pid));
        storm ()
      in
      steps solo a (fun () -> ());
      (* shared run: bob storms between every one of alice's steps *)
      let shared = mk_server () in
      let a' = admitted (Session.open_session ~target:"wire" shared "alice") in
      Target.set_read_cache (Option.get (Session.vis shared a')).Visualinux.target false;
      (* stalls and drops but no disconnects: this test isolates the
         fault-journal/counter plumbing; breaker-Open and link-loss
         degradation get their own deterministic test below.  The drop
         rate must be high enough that at least one read exhausts the
         retry budget (drop_rate^(max_retries+1) per read) for every
         transport seed, or the non-vacuity check below flakes. *)
      let b =
        admitted
          (Session.open_session ~target:"wire"
             ~faults:{ Transport.stall_rate = 0.3; drop_rate = 0.6; disconnect_rate = 0. }
             shared "bob")
      in
      let storm () = ignore (Session.vplot shared b (fig "7-1")) in
      steps shared a' storm;
      (* bob really did take faults (the storm is not vacuous)... *)
      Session.counter shared b "faults" > 0
      (* ...and alice cannot tell: same pane bytes, same fault journal,
         same private counters *)
      && observe solo a = observe shared a')

let test_breaker_open_quarantine_and_fair_recovery () =
  let kernel = boot () in
  (* solo baseline for alice's pane bytes *)
  let solo = Session.create kernel in
  Session.add_target solo ~transport:(Transport.create ~seed:7 Transport.qemu_local) "wire";
  let sa = admitted (Session.open_session ~target:"wire" solo "alice") in
  let p0, _, _ = admitted (Session.vplot solo sa (fig "3-4")) in
  ignore (admitted (Session.vrefresh solo sa ~pane:p0.Panel.pid));
  let solo_state = pane_state (Option.get (Session.vis solo sa)) in
  (* shared server: alice + carol healthy, bob's link drops everything *)
  let srv = Session.create kernel in
  Session.add_target srv ~transport:(Transport.create ~seed:7 Transport.qemu_local) "wire";
  let a = admitted (Session.open_session ~target:"wire" srv "alice") in
  let b =
    admitted
      (Session.open_session ~target:"wire"
         ~faults:{ Transport.stall_rate = 0.; drop_rate = 1.0; disconnect_rate = 0. }
         srv "bob")
  in
  let c = admitted (Session.open_session ~target:"wire" srv "carol") in
  let pa, _, _ = admitted (Session.vplot srv a (fig "3-4")) in
  let pc, _, _ = admitted (Session.vplot srv c (fig "7-1")) in
  ignore pc;
  (* bob's storm trips the shared breaker: the target quarantines *)
  ignore (Session.vplot srv b (fig "9-2"));
  (match Session.target_health srv "wire" with
  | `Quarantine prober -> Alcotest.(check int) "first prober elected round-robin" a prober
  | _ -> Alcotest.fail "breaker-Open must quarantine the target");
  (* non-probers are refused with a typed reason, never an exception *)
  (match Session.vplot srv b (fig "9-2") with
  | Session.Rejected { reason = Session.Quarantined { target; prober } } ->
      Alcotest.(check string) "refusal names the target" "wire" target;
      Alcotest.(check int) "refusal names the prober" a prober
  | Session.Rejected { reason } ->
      Alcotest.failf "wrong reason: %s" (Session.reason_to_string reason)
  | Session.Admitted _ -> Alcotest.fail "non-prober must be refused during quarantine");
  Alcotest.(check bool) "refused session counts its rejection" true
    (Session.counter srv b "rejections" > 0);
  (* the refused sessions degrade to stale renders, they do not go dark *)
  (match Session.render srv c pc.Panel.pid with
  | Some out -> Alcotest.(check bool) "carol serves [STALE] panes" true (contains out "[STALE]")
  | None -> Alcotest.fail "carol must still render");
  (* bob's fault condition clears (otherwise his first re-admitted op
     would — correctly — re-trip the quarantine) *)
  Session.set_faults srv b Transport.no_faults;
  (* the prober's traffic heals the link: quarantine -> probation *)
  ignore (admitted (Session.vrefresh srv a ~pane:pa.Panel.pid));
  (match Session.target_health srv "wire" with
  | `Probation waiting ->
      Alcotest.(check (list int)) "probation queue is the non-probers, in order"
        [ b; c ] waiting
  | _ -> Alcotest.fail "successful probe must open probation");
  (* re-admission is staggered: carol (not head) is still refused... *)
  (match Session.vplot srv c (fig "7-1") with
  | Session.Rejected { reason = Session.Quarantined _ } -> ()
  | _ -> Alcotest.fail "non-head waiter must wait its turn");
  (* ...bob (head) gets back in, which admits one waiter per op *)
  (match Session.vplot srv b (fig "9-2") with
  | Session.Admitted _ -> ()
  | Session.Rejected { reason } ->
      Alcotest.failf "head waiter refused: %s" (Session.reason_to_string reason));
  (match Session.vplot srv c (fig "7-1") with
  | Session.Admitted _ -> ()
  | Session.Rejected { reason } ->
      Alcotest.failf "second waiter refused after one op: %s"
        (Session.reason_to_string reason));
  Alcotest.(check bool) "target healthy again" true
    (Session.target_health srv "wire" = `Healthy);
  (* through the whole storm+recovery, alice's pane is bit-identical to
     her solo run *)
  let shared_state =
    List.filter (fun (id, _, _) -> id = pa.Panel.pid)
      (pane_state (Option.get (Session.vis srv a)))
  in
  Alcotest.(check bool) "alice's pane bytes identical to solo" true
    (shared_state = List.filter (fun (id, _, _) -> id = p0.Panel.pid) solo_state);
  Alcotest.(check (list string)) "alice's fault journal identical to solo"
    (List.map Target.fault_to_string (Session.fault_journal solo sa))
    (List.map Target.fault_to_string (Session.fault_journal srv a))

(* ------------------------------------------------------------------ *)
(* Admission control *)

let test_capacity_and_budgets () =
  let kernel = boot () in
  let srv = Session.create ~capacity:2 kernel in
  Session.add_target srv ~transport:(Transport.create Transport.qemu_local) "wire";
  let _a = admitted (Session.open_session ~target:"wire" srv "a") in
  let b =
    admitted
      (Session.open_session ~target:"wire"
         ~budget:(Session.budget ~max_reads:40 ()) srv "b")
  in
  (* every field read must be its own round-trip, or struct-granular
     coalescing amortizes the whole plot under the budget *)
  Target.set_read_cache (Option.get (Session.vis srv b)).Visualinux.target false;
  (match Session.open_session srv "c" with
  | Session.Rejected { reason = Session.Capacity { limit } } ->
      Alcotest.(check int) "capacity reason carries the limit" 2 limit
  | _ -> Alcotest.fail "over-capacity open must be a typed rejection");
  (match Session.open_session ~target:"nope" srv "c" with
  | Session.Rejected { reason = Session.Unknown_target _ } -> ()
  | _ -> Alcotest.fail "unknown target must be a typed rejection");
  (* the first plot is admitted and the budget bites mid-plot at the
     fetch boundary: refused reads degrade to Timed_out faults *)
  let _, res, _ = admitted (Session.vplot srv b (fig "9-2")) in
  Alcotest.(check bool) "budgeted plot still produced boxes" true
    (Vgraph.box_count res.Viewcl.graph > 0);
  Alcotest.(check bool) "gate refusals counted" true
    (Session.counter srv b "budget.refusals" > 0);
  Alcotest.(check bool) "refused reads degrade to Timed_out faults" true
    (List.exists
       (function Target.Timed_out _ -> true | _ -> false)
       (Session.fault_journal srv b));
  Alcotest.(check bool) "budget spend is tracked" true (Session.reads_used srv b >= 40);
  (* once spent, the next op is refused up front — typed, no exception *)
  (match Session.vplot srv b (fig "9-2") with
  | Session.Rejected { reason = Session.Reads_exhausted { used; limit } } ->
      Alcotest.(check int) "limit echoed" 40 limit;
      Alcotest.(check bool) "usage echoed" true (used >= limit)
  | _ -> Alcotest.fail "exhausted budget must be a typed rejection");
  (* a new epoch renews the budget *)
  Session.begin_epoch srv b;
  (match Session.vplot srv b (fig "9-2") with
  | Session.Admitted _ -> ()
  | Session.Rejected { reason } ->
      Alcotest.failf "fresh epoch refused: %s" (Session.reason_to_string reason));
  Alcotest.(check bool) "epoch counter moved" true (Session.counter srv b "epochs" = 1)

(* ------------------------------------------------------------------ *)
(* Cross-session cache sharing (the intended coupling) *)

let test_cross_session_cache_hits () =
  let kernel = boot () in
  let mk () =
    let srv = Session.create kernel in
    Session.add_target srv ~transport:(Transport.create Transport.qemu_local) "wire";
    srv
  in
  (* a plot self-hits pages it re-reads, so "first plot hits" is never
     zero; the cross-session effect is the *extra* hits (and saved wire
     reads) b gets when a has already walked the same structures *)
  let solo = mk () in
  let b0 = admitted (Session.open_session ~target:"wire" solo "b") in
  ignore (admitted (Session.vplot solo b0 (fig "3-4")));
  let shared = mk () in
  let a = admitted (Session.open_session ~target:"wire" shared "a") in
  let b = admitted (Session.open_session ~target:"wire" shared "b") in
  ignore (admitted (Session.vplot shared a (fig "3-4")));
  ignore (admitted (Session.vplot shared b (fig "3-4")));
  Alcotest.(check bool) "b hits a's warmed cache beyond its solo self-hits" true
    (Session.counter shared b "cache.hits" > Session.counter solo b0 "cache.hits");
  Alcotest.(check bool) "and spends fewer wire reads than solo" true
    (Session.counter shared b "reads" < Session.counter solo b0 "reads")

(* ------------------------------------------------------------------ *)
(* Crash-safe fleet recovery *)

let test_fleet_recovery () =
  let kernel = boot () in
  let mk () =
    let srv = Session.create kernel in
    Session.add_target srv ~transport:(Transport.create ~seed:11 Transport.qemu_local) "wire";
    srv
  in
  let srv = mk () in
  let a = admitted (Session.open_session ~target:"wire" srv "alice") in
  let b =
    admitted
      (Session.open_session ~target:"wire"
         ~budget:(Session.budget ~max_reads:100_000 ()) srv "bob")
  in
  let pa, _, _ = admitted (Session.vplot srv a (fig "3-4")) in
  ignore
    (admitted
       (Session.vctrl srv a
          (Visualinux.Split
             { pane = pa.Panel.pid; dir = `Vertical; program = fig "7-1" })));
  ignore
    (admitted
       (Session.vctrl srv a (Visualinux.Apply { pane = pa.Panel.pid; viewql = ql_collapse })));
  let pb1, _, _ = admitted (Session.vplot srv b (fig "9-2")) in
  let pb2, _, _ = admitted (Session.vplot srv b (fig "7-1")) in
  ignore (admitted (Session.vctrl srv b (Visualinux.Close { pane = pb1.Panel.pid })));
  ignore pb2;
  let before =
    List.map (fun sid -> (sid, pane_state (Option.get (Session.vis srv sid))))
      (Session.session_ids srv)
  in
  let snapshot = Session.save_fleet srv in
  (* the server dies; a fresh one recovers the whole fleet *)
  let srv2 = mk () in
  let outcomes = Session.recover_fleet srv2 snapshot in
  let recovered = List.map (function
    | Session.Admitted (sid, stale) -> (sid, stale)
    | Session.Rejected { reason } ->
        Alcotest.failf "fleet recovery refused: %s" (Session.reason_to_string reason))
    outcomes
  in
  Alcotest.(check (list int)) "every session re-admitted under its old sid" [ a; b ]
    (List.map fst recovered);
  List.iter
    (fun (sid, stale) ->
      Alcotest.(check int) (Printf.sprintf "session %d: no stale panes" sid) 0 stale)
    recovered;
  let after =
    List.map (fun sid -> (sid, pane_state (Option.get (Session.vis srv2 sid))))
      (Session.session_ids srv2)
  in
  Alcotest.(check bool) "pane ids, box ids and pane bytes all reproduced" true
    (before = after);
  (* budgets and fault configs travel with the fleet *)
  Alcotest.(check bool) "budgets restored" true
    ((Option.get (Session.budget_of srv2 b)).Session.max_reads = Some 100_000)

(* ------------------------------------------------------------------ *)
(* Obs export: breaker state and cache hit rate as gauges *)

let test_obs_gauges () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let kernel = boot () in
      let srv = Session.create kernel in
      Session.add_target srv ~transport:(Transport.create Transport.qemu_local) "wire";
      let a = admitted (Session.open_session ~target:"wire" srv "a") in
      ignore (admitted (Session.vplot srv a (fig "3-4")));
      Alcotest.(check (option (float 0.))) "breaker gauge exported (closed=0)" (Some 0.)
        (Obs.Metrics.gauge "transport.breaker_state");
      ignore (admitted (Session.vplot srv a (fig "3-4")));
      (match Obs.Metrics.gauge "cache.hit_rate" with
      | Some r -> Alcotest.(check bool) "hit-rate gauge in (0,1]" true (r > 0. && r <= 1.)
      | None -> Alcotest.fail "cache.hit_rate gauge must be exported");
      Alcotest.(check bool) "per-session counters mirrored into obs" true
        (Obs.Metrics.counter (Printf.sprintf "session.%d.plots" a) = 2))

let suite =
  [ QCheck_alcotest.to_alcotest compaction_replay_equivalence;
    Alcotest.test_case "compaction: churn collapses to a reserve" `Quick
      test_compaction_drops_churn;
    Alcotest.test_case "auto-compaction bounds the journal" `Quick
      test_auto_compaction_bounds_journal;
    QCheck_alcotest.to_alcotest isolation_under_fault_storm;
    Alcotest.test_case "breaker-Open: quarantine, stale service, fair re-admission" `Quick
      test_breaker_open_quarantine_and_fair_recovery;
    Alcotest.test_case "admission: capacity + budgets are typed rejections" `Quick
      test_capacity_and_budgets;
    Alcotest.test_case "cross-session cache hits" `Quick test_cross_session_cache_hits;
    Alcotest.test_case "fleet recovery reproduces pane and box ids" `Quick
      test_fleet_recovery;
    Alcotest.test_case "obs gauges: breaker state, cache hit rate" `Quick test_obs_gauges ]
