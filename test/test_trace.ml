(* Fleet-wide causal tracing and the SLO burn-rate engine (ISSUE 8):
   every admitted op yields exactly one root [session.op] span with a
   distinct nonzero trace id, and every hedge / canary / retry span of
   that trace is link-reachable from the root (qcheck, over random
   gray-failure rates); hedge and canary links are non-vacuous and
   surface as Chrome flow events; refusals emit a typed instant
   carrying the would-be trace id; disabled-mode runs stay
   byte-identical with zero observability drift; the multi-window burn
   math, breach/clear escalation, eviction-proof attr breakdowns,
   histogram exemplars and the Prometheus exporter. *)

let fig name = (Option.get (Scripts.find name)).Scripts.source

let boot () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  k

let admitted = function
  | Session.Admitted x -> x
  | Session.Rejected { reason } ->
      Alcotest.failf "unexpected rejection: %s" (Session.reason_to_string reason)

(* Graph identity up to box-id renumbering, minus the obs footer. *)
let canonical g =
  let g' = Vgraph.renumber g in
  Vgraph.set_title g' "identity";
  Render.ascii g'
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (String.length l >= 5 && String.sub l 0 5 = "[obs:"))
  |> String.concat "\n"

(* Clean, enabled registry with a ring big enough that no span of the
   scenario is evicted (link reachability needs every endpoint); the
   switch is left off afterwards so no other suite sees stray spans. *)
let with_obs ?(enabled = true) ?(cap = 1 lsl 17) f =
  let cap0 = Obs.ring_capacity () in
  Obs.reset ();
  Obs.set_ring_capacity cap;
  Obs.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.set_ring_capacity cap0;
      Obs.reset ())
    f

(* A two-target fleet: [t1] possibly gray, [t2] its healthy replica,
   alice homed on t1 and bob on t2. Returns (srv, t1, alice, bob). *)
let fleet ?(seed = 3) kernel =
  let srv = Session.create kernel in
  let t1 = Transport.create ~seed Transport.qemu_local in
  let t2 = Transport.create ~seed:(seed + 1) Transport.qemu_local in
  Session.add_target srv ~transport:t1 "t1";
  Session.add_target srv ~transport:t2 "t2";
  let a = admitted (Session.open_session ~target:"t1" srv "alice") in
  let b = admitted (Session.open_session ~target:"t2" srv "bob") in
  Target.set_read_cache (Option.get (Session.vis srv a)).Visualinux.target false;
  (srv, t1, a, b)

(* ------------------------------------------------------------------ *)
(* The root-span / link-reachability contract (qcheck) *)

(* Spans reachable from [root] over child edges (sparent) plus link
   edges, restricted to one trace's spans. *)
let reachable spans links root =
  let children = Hashtbl.create 64 in
  List.iter
    (fun (s : Obs.span) ->
      if s.Obs.sparent <> 0 then
        Hashtbl.replace children s.Obs.sparent
          (s.Obs.sid :: (Option.value ~default:[] (Hashtbl.find_opt children s.Obs.sparent))))
    spans;
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (Option.value ~default:[] (Hashtbl.find_opt children id));
      List.iter
        (fun (l : Obs.Trace.link) -> if l.Obs.Trace.lfrom = id then go l.Obs.Trace.lto)
        links
    end
  in
  go root;
  seen

let trace_contract =
  QCheck.Test.make
    ~name:
      "trace: one root session.op per admitted op; hedge/canary/retry link-reachable"
    ~count:6
    QCheck.(pair (int_bound 1_000_000) (int_bound 15))
    (fun (seed, pct) ->
      with_obs (fun () ->
          let kernel = boot () in
          let srv, t1, a, b = fleet ~seed:(1 + (seed mod 997)) kernel in
          let rate = float_of_int pct /. 100. in
          Transport.set_base_faults t1
            { Transport.stall_rate = rate; drop_rate = rate; disconnect_rate = 0. };
          let ops = ref 0 in
          let count = function Session.Admitted _ -> incr ops | Session.Rejected _ -> () in
          for _ = 1 to 5 do
            count (Session.vplot srv a (fig "3-4"));
            count (Session.vplot srv b (fig "3-4"))
          done;
          let spans = Obs.span_events () in
          let links = Obs.Trace.links () in
          let roots =
            List.filter (fun (s : Obs.span) -> s.Obs.sname = "session.op") spans
          in
          (* exactly one root per admitted op, each on a distinct
             nonzero trace *)
          let tids = List.map (fun (s : Obs.span) -> s.Obs.strace) roots in
          let one_per_op = List.length roots = !ops in
          let distinct =
            List.for_all (fun t -> t <> 0) tids
            && List.length (List.sort_uniq compare tids) = List.length tids
          in
          (* every hedge / canary / retry span of a trace hangs off its
             root via child edges and/or links *)
          let covered =
            List.for_all
              (fun (root : Obs.span) ->
                let mine =
                  List.filter (fun (s : Obs.span) -> s.Obs.strace = root.Obs.strace) spans
                in
                let seen = reachable mine links root.Obs.sid in
                List.for_all
                  (fun (s : Obs.span) ->
                    match s.Obs.sname with
                    | "session.hedge" | "session.canary" | "transport.retry" ->
                        Hashtbl.mem seen s.Obs.sid
                    | _ -> true)
                  mine)
              roots
          in
          if not (one_per_op && distinct && covered) then
            QCheck.Test.fail_reportf
              "ops=%d roots=%d distinct=%b covered=%b (rate %.2f)" !ops
              (List.length roots) distinct covered rate;
          true))

(* ------------------------------------------------------------------ *)
(* Hedge + canary links are non-vacuous and become Chrome flow events *)

let test_hedge_canary_links () =
  with_obs (fun () ->
      let kernel = boot () in
      let srv, t1, a, _ = fleet kernel in
      Transport.set_base_faults t1
        { Transport.stall_rate = 0.12; drop_rate = 0.12; disconnect_rate = 0. };
      let rec drive n =
        if Session.counter srv a "hedged.ops" > 0 then ()
        else if n = 0 then Alcotest.fail "no op was ever hedged"
        else begin
          ignore (admitted (Session.vplot srv a (fig "3-4")));
          drive (n - 1)
        end
      in
      drive 20;
      let spans = Obs.span_events () in
      let by_id = Hashtbl.create 256 in
      List.iter (fun (s : Obs.span) -> Hashtbl.replace by_id s.Obs.sid s) spans;
      let name_of id =
        match Hashtbl.find_opt by_id id with
        | Some s -> s.Obs.sname
        | None -> "<evicted>"
      in
      let links = Obs.Trace.links () in
      let kinds k = List.filter (fun (l : Obs.Trace.link) -> l.Obs.Trace.lkind = k) links in
      (match kinds "hedge" with
      | [] -> Alcotest.fail "no hedge link recorded"
      | l :: _ ->
          Alcotest.(check string) "hedge link leaves the root op span"
            "session.op" (name_of l.Obs.Trace.lfrom);
          Alcotest.(check string) "hedge link lands on the hedge span"
            "session.hedge" (name_of l.Obs.Trace.lto));
      (match kinds "canary" with
      | [] -> Alcotest.fail "no canary link recorded"
      | l :: _ ->
          Alcotest.(check string) "canary link leaves the root op span"
            "session.op" (name_of l.Obs.Trace.lfrom);
          Alcotest.(check string) "canary link lands on the canary span"
            "session.canary" (name_of l.Obs.Trace.lto));
      (* the exporter turns each link into a ph:"s" / ph:"f" flow pair *)
      let trace = Obs.chrome_trace () in
      let has s =
        let re = Str.regexp_string s in
        try ignore (Str.search_forward re trace 0); true with Not_found -> false
      in
      Alcotest.(check bool) "flow start for the hedge link" true
        (has "\"name\":\"hedge\",\"cat\":\"link\",\"ph\":\"s\"");
      Alcotest.(check bool) "flow finish for the hedge link" true
        (has "\"name\":\"hedge\",\"cat\":\"link\",\"ph\":\"f\"");
      Alcotest.(check bool) "flow start for the canary link" true
        (has "\"name\":\"canary\",\"cat\":\"link\",\"ph\":\"s\""))

let test_retry_link () =
  with_obs (fun () ->
      let kernel = boot () in
      let srv = Session.create kernel in
      let tr = Transport.create ~seed:11 Transport.qemu_local in
      Session.add_target srv ~transport:tr "wire";
      let a = admitted (Session.open_session ~target:"wire" srv "alice") in
      Transport.set_base_faults tr
        { Transport.stall_rate = 0.; drop_rate = 0.3; disconnect_rate = 0. };
      let rec drive n =
        if List.exists (fun (l : Obs.Trace.link) -> l.Obs.Trace.lkind = "retry")
             (Obs.Trace.links ())
        then ()
        else if n = 0 then Alcotest.fail "no retry link after 20 lossy plots"
        else begin
          ignore (Session.vplot srv a (fig "3-4"));
          drive (n - 1)
        end
      in
      drive 20;
      let spans = Obs.span_events () in
      let by_id = Hashtbl.create 256 in
      List.iter (fun (s : Obs.span) -> Hashtbl.replace by_id s.Obs.sid s) spans;
      let l =
        List.find (fun (l : Obs.Trace.link) -> l.Obs.Trace.lkind = "retry")
          (Obs.Trace.links ())
      in
      (match Hashtbl.find_opt by_id l.Obs.Trace.lto with
      | Some s ->
          Alcotest.(check string) "retry link lands on a transport.retry span"
            "transport.retry" s.Obs.sname
      | None -> Alcotest.fail "retry link target span evicted"))

(* ------------------------------------------------------------------ *)
(* Refusals stay attributable: typed instant with the would-be trace *)

let test_refusal_instant () =
  with_obs (fun () ->
      let kernel = boot () in
      let srv = Session.create kernel in
      let tr = Transport.create ~seed:5 Transport.qemu_local in
      Session.add_target srv ~transport:tr "wire";
      (match Session.vplot srv 999 (fig "3-4") with
      | Session.Rejected { reason = Session.Unknown_session 999 } -> ()
      | _ -> Alcotest.fail "expected Unknown_session refusal");
      let refusals =
        List.filter_map
          (function
            | Obs.Instant { iname = "session.refused"; iattrs; _ } -> Some iattrs
            | _ -> None)
          (Obs.events ())
      in
      match refusals with
      | [ attrs ] ->
          Alcotest.(check (option string)) "typed reason" (Some "unknown_session")
            (List.assoc_opt "reason" attrs);
          let tid = Option.value ~default:"0" (List.assoc_opt "trace" attrs) in
          Alcotest.(check bool) "carries a nonzero would-be trace id" true
            (tid <> "0" && tid <> "")
      | l -> Alcotest.failf "expected exactly one refusal instant, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Disabled mode: byte-identical renders, zero drift *)

let test_disabled_byte_identical_zero_drift () =
  (* run the same seeded gray-failure fleet twice; obs off must leave
     no trace of itself and change no rendered byte *)
  let run ~enabled =
    with_obs ~enabled (fun () ->
        let kernel = boot () in
        let srv, t1, a, b = fleet kernel in
        Transport.set_base_faults t1
          { Transport.stall_rate = 0.12; drop_rate = 0.12; disconnect_rate = 0. };
        let out = ref [] in
        for _ = 1 to 8 do
          let _, ra, _ = admitted (Session.vplot srv a (fig "3-4")) in
          let _, rb, _ = admitted (Session.vplot srv b (fig "3-4")) in
          out := canonical rb.Viewcl.graph :: canonical ra.Viewcl.graph :: !out
        done;
        let drift =
          ( Obs.spans_total (), Obs.event_count (),
            List.length (Obs.Trace.links ()),
            (* pre-made Counter handles stay registered at 0 *)
            List.fold_left (fun acc (_, v) -> acc + v) 0 (Obs.Metrics.counters ()),
            List.length (Obs.Metrics.gauges ()), Obs.Trace.mint () )
        in
        (List.rev !out, drift))
  in
  let off, (spans, events, links, counters, gauges, mint) = run ~enabled:false in
  Alcotest.(check int) "no spans while disabled" 0 spans;
  Alcotest.(check int) "no buffered events while disabled" 0 events;
  Alcotest.(check int) "no links while disabled" 0 links;
  Alcotest.(check int) "no counter ticks while disabled" 0 counters;
  Alcotest.(check int) "no gauges while disabled" 0 gauges;
  Alcotest.(check int) "mint yields 0 while disabled" 0 mint;
  let on, _ = run ~enabled:true in
  Alcotest.(check (list string)) "renders byte-identical with obs on vs off" off on

(* ------------------------------------------------------------------ *)
(* SLO burn math: multi-window min rule, escalation, recovery *)

let test_slo_burn_windows () =
  with_obs (fun () ->
      Obs.Slo.clear ();
      Obs.Slo.register
        { Obs.Slo.oname = "unit.avail";
          okind = Obs.Slo.Good_bad { good = "u.good"; bad = "u.bad" };
          otarget = 0.9 };
      let g name = Option.get (Obs.Metrics.gauge name) in
      let near msg expect got = Alcotest.(check (float 1e-9)) msg expect got in
      (* epoch 1: 10 good, 0 bad — quiet *)
      Obs.Metrics.incr ~by:10 "u.good";
      Obs.Slo.tick ();
      near "quiet epoch burns nothing" 0. (g "slo.unit.avail.burn_rate");
      (* epoch 2: 8 good, 2 bad — fast window burns 2x, but the slow
         8-epoch window has only burned 1x; the alert rate is the min *)
      Obs.Metrics.incr ~by:8 "u.good";
      Obs.Metrics.incr ~by:2 "u.bad";
      Obs.Slo.tick ();
      near "fast window: (2/10)/0.1" 2. (g "slo.unit.avail.burn_fast");
      near "slow window: (2/20)/0.1" 1. (g "slo.unit.avail.burn_slow");
      near "burn_rate = min(fast, slow)" 1. (g "slo.unit.avail.burn_rate");
      near "error budget fully spent" 0. (g "slo.unit.avail.budget_remaining");
      Alcotest.(check int) "escalation recorded once" 1
        (Obs.Metrics.counter "slo.breaches");
      let sev () =
        (List.find (fun (s : Obs.Slo.status) -> s.Obs.Slo.slo = "unit.avail")
           (Obs.Slo.status ()))
          .Obs.Slo.severity
      in
      Alcotest.(check string) "burn >= 1 pages at warn" "warn" (sev ());
      Alcotest.(check bool) "breach instant emitted" true
        (List.exists
           (function Obs.Instant { iname = "slo.breach"; _ } -> true | _ -> false)
           (Obs.events ()));
      (* epoch 3: clean again — both windows drop under 1x, recovery *)
      Obs.Metrics.incr ~by:10 "u.good";
      Obs.Slo.tick ();
      near "fast window back to 0" 0. (g "slo.unit.avail.burn_fast");
      Alcotest.(check string) "severity back to ok" "ok" (sev ());
      Alcotest.(check bool) "clear instant emitted" true
        (List.exists
           (function Obs.Instant { iname = "slo.clear"; _ } -> true | _ -> false)
           (Obs.events ()));
      Alcotest.(check int) "no double-counted escalation" 1
        (Obs.Metrics.counter "slo.breaches"))

(* ------------------------------------------------------------------ *)
(* Attr breakdowns survive ring eviction (satellite c) *)

let test_breakdown_survives_eviction () =
  with_obs ~cap:8 (fun () ->
      for _ = 1 to 100 do
        Obs.with_span ~attrs:[ ("target", "tA") ] "x.read" (fun () -> ())
      done;
      for _ = 1 to 50 do
        Obs.with_span ~attrs:[ ("target", "tB") ] "x.read" (fun () -> ())
      done;
      Alcotest.(check bool) "the tiny ring actually evicted" true (Obs.dropped () > 0);
      Alcotest.(check int) "ring holds only the newest 8" 8 (Obs.event_count ());
      let count name =
        match
          List.find_opt (fun (r : Obs.Profile.row) -> r.Obs.Profile.pname = name)
            (Obs.Profile.breakdown ())
        with
        | Some r -> r.Obs.Profile.pcount
        | None -> 0
      in
      Alcotest.(check int) "per-target tA count complete" 100 (count "x.read{target=tA}");
      Alcotest.(check int) "per-target tB count complete" 50 (count "x.read{target=tB}");
      match Obs.Profile.find "x.read" with
      | Some r -> Alcotest.(check int) "base aggregate complete" 150 r.Obs.Profile.pcount
      | None -> Alcotest.fail "base aggregate missing")

(* ------------------------------------------------------------------ *)
(* Histogram exemplars + the Prometheus exporter *)

let test_exemplars_and_prometheus () =
  with_obs (fun () ->
      let tid = Obs.Trace.mint () in
      Alcotest.(check bool) "mint yields distinct nonzero ids" true
        (tid <> 0 && Obs.Trace.mint () <> tid);
      Obs.Trace.with_trace tid (fun () -> Obs.Metrics.observe "u.lat_ms" 7.0);
      (* no ambient trace: the tail bucket gets no exemplar *)
      Obs.Metrics.observe "u.lat_ms" 900.0;
      (match Obs.Metrics.exemplars "u.lat_ms" with
      | [ (bucket, t, v) ] ->
          Alcotest.(check int) "exemplar in the sample's bucket"
            (Obs.Metrics.bucket_of 7.0) bucket;
          Alcotest.(check int) "exemplar remembers the ambient trace" tid t;
          Alcotest.(check (float 1e-9)) "exemplar remembers the value" 7.0 v
      | l -> Alcotest.failf "expected exactly one exemplar, got %d" (List.length l));
      (match Obs.Metrics.top_exemplar "u.lat_ms" with
      | Some (t, v) ->
          Alcotest.(check int) "top exemplar: highest traced bucket" tid t;
          Alcotest.(check (float 1e-9)) "top exemplar value" 7.0 v
      | None -> Alcotest.fail "no top exemplar");
      Obs.Metrics.incr ~by:3 "u.ops";
      Obs.Metrics.set_gauge "u.load" 0.5;
      let prom = Obs.prometheus () in
      let has s =
        let re = Str.regexp_string s in
        try ignore (Str.search_forward re prom 0); true with Not_found -> false
      in
      Alcotest.(check bool) "counter exposed" true (has "# TYPE u_ops counter\nu_ops 3");
      Alcotest.(check bool) "gauge exposed" true (has "# TYPE u_load gauge");
      Alcotest.(check bool) "histogram exposed as a summary" true
        (has "# TYPE u_lat_ms summary");
      Alcotest.(check bool) "quantile series present" true
        (has "u_lat_ms{quantile=\"0.95\"}");
      Alcotest.(check bool) "count series present" true (has "u_lat_ms_count 2"))

(* ------------------------------------------------------------------ *)

let qt t = QCheck_alcotest.to_alcotest t

let suite =
  [ qt trace_contract;
    Alcotest.test_case "hedge + canary links -> Chrome flow events" `Quick
      test_hedge_canary_links;
    Alcotest.test_case "retry link lands on the replacing attempt" `Quick
      test_retry_link;
    Alcotest.test_case "refusal instant carries the would-be trace id" `Quick
      test_refusal_instant;
    Alcotest.test_case "disabled mode: byte-identical renders, zero drift" `Quick
      test_disabled_byte_identical_zero_drift;
    Alcotest.test_case "slo: multi-window burn, breach/clear escalation" `Quick
      test_slo_burn_windows;
    Alcotest.test_case "breakdowns survive ring eviction" `Quick
      test_breakdown_survives_eviction;
    Alcotest.test_case "exemplars + prometheus exposition" `Quick
      test_exemplars_and_prometheus ]
