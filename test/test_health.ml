(* Adaptive target health (ISSUE 7): the EWMA decay law and the
   hysteresis of the graduated grade machine (qcheck), retry-budget
   exhaustion degrading to Timed_out faults instead of raising,
   the weighted-shed starvation bound, hedged failover producing
   byte-identical renders with the sick breaker still Closed, the
   Half_open-canary read charging the acting session's epoch read
   budget, and the campaign DSL parser. *)

let fig name = (Option.get (Scripts.find name)).Scripts.source
let ql_collapse = "a = SELECT mid FROM *\nUPDATE a WITH collapsed: true"

let boot () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  k

let admitted = function
  | Session.Admitted x -> x
  | Session.Rejected { reason } ->
      Alcotest.failf "unexpected rejection: %s" (Session.reason_to_string reason)

(* Graph identity up to box-id renumbering, minus the obs footer. *)
let canonical g =
  let g' = Vgraph.renumber g in
  Vgraph.set_title g' "identity";
  Render.ascii g'
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (String.length l >= 5 && String.sub l 0 5 = "[obs:"))
  |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* The EWMA decay law (pure) *)

let ewma_monotone_decay =
  QCheck.Test.make ~name:"ewma: clean reads decay the fault rate geometrically"
    ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 60))
    (fun (mills, n) ->
      let x0 = float_of_int mills /. 1000. in
      let rec go x i acc =
        if i = n then List.rev acc
        else
          let x' = Transport.ewma_step x ~ok:true in
          go x' (i + 1) (x' :: acc)
      in
      let xs = go x0 0 [] in
      (* each step is exactly (1-alpha)*x: monotone non-increasing,
         never negative, and after n steps the closed form holds *)
      let rec chain prev = function
        | [] -> true
        | x :: rest -> x <= prev && x >= 0. && chain x rest
      in
      let monotone = chain x0 xs in
      let closed_form =
        match List.rev xs with
        | [] -> true
        | last :: _ ->
            let expect = x0 *. ((1. -. Transport.ewma_alpha) ** float_of_int n) in
            Float.abs (last -. expect) < 1e-9
      in
      monotone && closed_form)

let ewma_converges_to_observed_rate =
  QCheck.Test.make ~name:"ewma: converges toward the observed fault rate"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 1 9))
    (fun (seed, tenths) ->
      (* a deterministic 10-slot duty cycle with [tenths] faults: the
         EWMA must settle within the band around tenths/10 and stay in
         [0,1] the whole way *)
      let rate = float_of_int tenths /. 10. in
      let x = ref (float_of_int (seed mod 2)) in
      let in_range = ref true in
      for i = 0 to 399 do
        let ok = i mod 10 >= tenths in
        x := Transport.ewma_step !x ~ok;
        if !x < 0. || !x > 1. then in_range := false
      done;
      !in_range && Float.abs (!x -. rate) < 0.35)

(* ------------------------------------------------------------------ *)
(* Hysteresis: the grade machine cannot flap within one window *)

let health_no_flap_within_window =
  QCheck.Test.make
    ~name:"health grade: no two transitions within one hysteresis window"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 120) (int_bound 1000))
    (fun frs ->
      let frs = List.map (fun m -> float_of_int m /. 1000.) frs in
      let th = Transport.Health.default_thresholds in
      let grade = ref Transport.Health.Fine in
      let since = ref th.Transport.Health.window in
      let gaps_ok = ref true in
      List.iter
        (fun fr ->
          let g' = Transport.Health.step th !grade ~fr ~since:!since in
          if g' <> !grade then begin
            (* a transition fired: the machine must have waited out the
               full window since the previous one *)
            if !since < th.Transport.Health.window then gaps_ok := false;
            grade := g';
            since := 0
          end
          else incr since)
        frs;
      !gaps_ok)

let health_step_frozen_inside_window =
  QCheck.Test.make ~name:"health grade: step is the identity while since < window"
    ~count:300
    QCheck.(pair (int_bound 1000) (int_bound 7))
    (fun (mills, since) ->
      let fr = float_of_int mills /. 1000. in
      let th = Transport.Health.default_thresholds in
      List.for_all
        (fun g -> Transport.Health.step th g ~fr ~since = g)
        [ Transport.Health.Fine; Transport.Health.Degraded; Transport.Health.Sick ])

let test_health_bands () =
  let open Transport.Health in
  let th = default_thresholds in
  let step g fr = step th g ~fr ~since:th.window in
  Alcotest.(check bool) "clean wire stays Fine" true (step Fine 0.0 = Fine);
  Alcotest.(check bool) "Fine -> Degraded at degrade_hi" true
    (step Fine th.degrade_hi = Degraded);
  Alcotest.(check bool) "Degraded holds between the bands" true
    (step Degraded ((th.degrade_lo +. th.sick_hi) /. 2.) = Degraded);
  Alcotest.(check bool) "Degraded -> Fine only at degrade_lo" true
    (step Degraded th.degrade_lo = Fine && step Degraded (th.degrade_lo +. 0.01) = Degraded);
  Alcotest.(check bool) "Degraded -> Sick at sick_hi" true
    (step Degraded th.sick_hi = Sick);
  Alcotest.(check bool) "Sick -> Degraded at sick_lo, not above" true
    (step Sick th.sick_lo = Degraded && step Sick (th.sick_lo +. 0.01) = Sick)

(* ------------------------------------------------------------------ *)
(* Retry budgets: exhaustion degrades, never raises *)

let test_retry_budget_exhaustion () =
  let kernel = boot () in
  let srv = Session.create kernel in
  let tr = Transport.create ~seed:23 Transport.qemu_local in
  Session.add_target srv ~transport:tr "wire";
  (* bob's overlay drops most replies; with a zero-capacity retry bucket
     every would-be retry is denied at the gate *)
  let b =
    admitted
      (Session.open_session ~target:"wire"
         ~budget:(Session.budget ~retry_burst:0 ())
         ~faults:{ Transport.stall_rate = 0.; drop_rate = 0.6; disconnect_rate = 0. }
         srv "bob")
  in
  Target.set_read_cache (Option.get (Session.vis srv b)).Visualinux.target false;
  let _, res, _ = admitted (Session.vplot srv b (fig "3-4")) in
  Alcotest.(check bool) "plot still produced boxes" true
    (Vgraph.box_count res.Viewcl.graph > 0);
  Alcotest.(check bool) "denials counted" true (Session.counter srv b "retry.denied" > 0);
  Alcotest.(check bool) "denied reads degrade to Timed_out faults" true
    (List.exists
       (function Target.Timed_out _ -> true | _ -> false)
       (Session.fault_journal srv b));
  let snap = Transport.snapshot tr in
  Alcotest.(check bool) "transport mirrors the denials" true
    (snap.Transport.retry_denials > 0);
  Alcotest.(check int) "a denied retry was never attempted" 0 snap.Transport.retries;
  (* the budget refused, not the link: no breaker accounting *)
  Alcotest.(check bool) "breaker untouched" true
    (Transport.breaker tr = Transport.Closed && snap.Transport.breaker_trips = 0);
  Alcotest.(check int) "zero-capacity bucket stays empty" 0 (Session.retry_tokens srv b);
  (* a solo session-fault storm is overlay-attributed: the wire's own
     health EWMA must not have learned anything from it *)
  Alcotest.(check (float 1e-9)) "overlay faults never feed the wire EWMA" 0.
    (Transport.ewma tr).Transport.ew_fault_rate

(* ------------------------------------------------------------------ *)
(* Weighted shedding: the starvation bound *)

let test_weighted_shed_starvation_bound () =
  let kernel = boot () in
  let srv = Session.create kernel in
  let tr = Transport.create ~seed:5 Transport.qemu_local in
  Session.add_target srv ~transport:tr "wire";
  let a = admitted (Session.open_session ~target:"wire" ~weight:4 srv "alice") in
  let b = admitted (Session.open_session ~target:"wire" srv "bob") in
  let c = admitted (Session.open_session ~target:"wire" srv "carol") in
  (* every read must touch the wire, or the shared cache starves the
     health EWMA of samples *)
  Target.set_read_cache (Option.get (Session.vis srv a)).Visualinux.target false;
  (* each driven op is a fresh plot: an incremental refresh of an
     unchanged pane performs almost no wire reads, which would starve
     the EWMA of samples *)
  let op sid = Session.vplot srv sid (fig "3-4") in
  (* gray weather on the wire itself: stalls and drops at 0.10 each keep
     the per-attempt fault EWMA between degrade_hi and sick_hi *)
  Transport.set_base_faults tr
    { Transport.stall_rate = 0.10; drop_rate = 0.10; disconnect_rate = 0. };
  let rec warm n =
    if n = 0 then Alcotest.fail "target never reached Degraded"
    else begin
      List.iter (fun sid -> ignore (op sid)) [ a; b; c ];
      if Session.target_health srv "wire" <> `Degraded then warm (n - 1)
    end
  in
  warm 12;
  (* with weights 4/1/1 the stride is 2 * mean weight = 4: alice's
     balance always covers it; bob and carol are knocked back at most
     ceil(stride/weight) = 4 times before admission *)
  let sheds = ref 0 in
  let admit_within sid bound =
    let rec knock k =
      if k > bound then
        Alcotest.failf "session %d starved past its bound of %d" sid bound
      else
        match op sid with
        | Session.Admitted _ -> k - 1
        | Session.Rejected { reason = Session.Shed { deficit; _ } } ->
            Alcotest.(check bool) "shed deficit is positive" true (deficit > 0);
            incr sheds;
            knock (k + 1)
        | Session.Rejected { reason } ->
            Alcotest.failf "unexpected rejection: %s" (Session.reason_to_string reason)
    in
    knock 1
  in
  for _ = 1 to 6 do
    Alcotest.(check int) "weight-4 alice is never shed" 0 (admit_within a 1);
    ignore (admit_within b 4);
    ignore (admit_within c 4)
  done;
  Alcotest.(check bool) "shedding was exercised (non-vacuous)" true (!sheds > 0);
  Alcotest.(check bool) "weights are visible" true (Session.weight_of srv a = 4)

(* ------------------------------------------------------------------ *)
(* Hedged failover: byte-identical, breaker never opens *)

let test_hedged_failover_byte_identical () =
  let kernel = boot () in
  (* solo baseline over a perfectly healthy wire *)
  let solo = Session.create kernel in
  Session.add_target solo ~transport:(Transport.create ~seed:3 Transport.qemu_local) "w";
  let s = admitted (Session.open_session ~target:"w" solo "ref") in
  let _, solo_res, _ = admitted (Session.vplot solo s (fig "3-4")) in
  (* shared server: t1 turns gray, t2 is its healthy replica *)
  let srv = Session.create kernel in
  let t1 = Transport.create ~seed:3 Transport.qemu_local in
  let t2 = Transport.create ~seed:4 Transport.qemu_local in
  Session.add_target srv ~transport:t1 "t1";
  Session.add_target srv ~transport:t2 "t2";
  let a = admitted (Session.open_session ~target:"t1" srv "alice") in
  Target.set_read_cache (Option.get (Session.vis srv a)).Visualinux.target false;
  Transport.set_base_faults t1
    { Transport.stall_rate = 0.12; drop_rate = 0.12; disconnect_rate = 0. };
  let rec drive n last =
    if Session.counter srv a "hedged.ops" > 0 then last
    else if n = 0 then Alcotest.fail "no op was ever hedged"
    else
      let _, res, _ = admitted (Session.vplot srv a (fig "3-4")) in
      drive (n - 1) (Some res)
  in
  let hedged = Option.get (drive 20 None) in
  Alcotest.(check bool) "t1 is Degraded, not quarantined" true
    (Session.target_health srv "t1" = `Degraded);
  Alcotest.(check string) "hedged render byte-identical to the healthy solo plot"
    (canonical solo_res.Viewcl.graph) (canonical hedged.Viewcl.graph);
  let snap = Transport.snapshot t1 in
  Alcotest.(check bool) "rerouted before the breaker ever opened" true
    (snap.Transport.breaker_trips = 0 && Transport.breaker t1 = Transport.Closed);
  Alcotest.(check bool) "the canary kept probing the sick wire" true
    (Session.counter srv a "canaries" > 0);
  (* the hedge must come home: recovery drains the EWMA via canaries *)
  Transport.set_base_faults t1 Transport.no_faults;
  let rec recover n =
    if Session.target_health srv "t1" = `Healthy then ()
    else if n = 0 then Alcotest.fail "t1 never recovered after the weather cleared"
    else begin
      ignore (admitted (Session.vplot srv a (fig "3-4")));
      recover (n - 1)
    end
  in
  recover 60

(* ------------------------------------------------------------------ *)
(* The probe canary charges the acting session's epoch read budget *)

let test_canary_charges_read_budget () =
  let kernel = boot () in
  let srv = Session.create kernel in
  let tr = Transport.create ~seed:9 Transport.qemu_local in
  Session.add_target srv ~transport:tr "wire";
  let a = admitted (Session.open_session ~target:"wire" srv "alice") in
  let b = admitted (Session.open_session ~target:"wire" srv "bob") in
  let pa, _, _ = admitted (Session.vplot srv a (fig "3-4")) in
  let pb, _, _ = admitted (Session.vplot srv b (fig "3-4")) in
  (* the link dies; the next op lands the target in quarantine *)
  Transport.disconnect tr;
  ignore (Session.vctrl srv a (Visualinux.Apply { pane = pa.Panel.pid; viewql = ql_collapse }));
  let prober =
    match Session.target_health srv "wire" with
    | `Quarantine p -> p
    | h ->
        Alcotest.failf "expected quarantine, target is %s"
          (match h with
          | `Healthy -> "healthy" | `Degraded -> "degraded"
          | `Probation _ -> "probation" | `Quarantine _ -> "quarantine")
  in
  (* a fresh epoch zeroes the prober's read spend, so the only wire
     reads its next (read-free) ctrl op can charge are the canary's *)
  Session.begin_epoch srv prober;
  let canaries0 = Session.counter srv prober "canaries" in
  let pane = if prober = a then pa.Panel.pid else pb.Panel.pid in
  ignore (admitted (Session.vctrl srv prober (Visualinux.Apply { pane; viewql = ql_collapse })));
  Alcotest.(check bool) "the probe fired a canary read" true
    (Session.counter srv prober "canaries" > canaries0);
  Alcotest.(check bool) "and the canary counted against the epoch read budget" true
    (Session.reads_used srv prober >= 1)

(* ------------------------------------------------------------------ *)
(* The campaign DSL parser *)

let test_campaign_parse () =
  let module C = Workload.Campaign in
  let c =
    C.parse
      (String.concat "\n"
         [ "# gray ramp";
           "campaign demo";
           "targets t1 t2   # replica pair";
           "sessions 4";
           "weights 4 1";
           "ops 120";
           "at 1  phase baseline";
           "at 40 fault_rate t1 0.18";
           "at 40 phase ramp";
           "at 90 recover t1";
           "";
           "expect p95_ratio 1.25";
           "expect availability.ramp 0.9" ])
  in
  Alcotest.(check string) "name" "demo" c.C.cname;
  Alcotest.(check (list string)) "targets" [ "t1"; "t2" ] c.C.ctargets;
  Alcotest.(check int) "sessions" 4 c.C.csessions;
  Alcotest.(check int) "ops" 120 c.C.cops;
  Alcotest.(check (list int)) "explicit weights" [ 4; 1 ] c.C.cweights;
  Alcotest.(check int) "weight_at pads with 1s" 1 (C.weight_at c 3);
  Alcotest.(check int) "weight_at reads the list" 4 (C.weight_at c 0);
  Alcotest.(check (list string)) "events at one mark keep file order"
    [ "fault_rate t1 0.18"; "phase ramp" ]
    (List.map C.event_to_string (C.events_at c 40));
  Alcotest.(check int) "no events off-mark" 0 (List.length (C.events_at c 41));
  Alcotest.(check (list string)) "expects preserved"
    [ "p95_ratio"; "availability.ramp" ]
    (List.map fst c.C.expects);
  Alcotest.(check bool) "marks ascending" true
    (let marks = List.map fst c.C.events in
     List.sort compare marks = marks)

let test_campaign_parse_errors () =
  let module C = Workload.Campaign in
  let line_of input =
    match C.parse input with
    | exception C.Parse_error { line; _ } -> line
    | _ -> Alcotest.fail "bad campaign accepted"
  in
  Alcotest.(check int) "unknown directive carries its line" 2
    (line_of "campaign x\nbogus t1");
  Alcotest.(check int) "bad op mark" 1 (line_of "at soon phase p");
  Alcotest.(check int) "bad fault rate" 3
    (line_of "campaign x\nops 10\nat 2 fault_rate t1 lots");
  Alcotest.(check int) "unknown event" 1 (line_of "at 2 explode t1")

let suite =
  [ QCheck_alcotest.to_alcotest ewma_monotone_decay;
    QCheck_alcotest.to_alcotest ewma_converges_to_observed_rate;
    QCheck_alcotest.to_alcotest health_no_flap_within_window;
    QCheck_alcotest.to_alcotest health_step_frozen_inside_window;
    Alcotest.test_case "health grade bands + hysteresis thresholds" `Quick
      test_health_bands;
    Alcotest.test_case "retry-budget exhaustion degrades to Timed_out" `Quick
      test_retry_budget_exhaustion;
    Alcotest.test_case "weighted shed: ceil(stride/weight) starvation bound" `Quick
      test_weighted_shed_starvation_bound;
    Alcotest.test_case "hedged failover: byte-identical, breaker Closed" `Quick
      test_hedged_failover_byte_identical;
    Alcotest.test_case "quarantine canary charges the epoch read budget" `Quick
      test_canary_charges_read_budget;
    Alcotest.test_case "campaign DSL: parse" `Quick test_campaign_parse;
    Alcotest.test_case "campaign DSL: parse errors carry line numbers" `Quick
      test_campaign_parse_errors ]
