(* The observability substrate (ISSUE 3): span nesting invariants,
   log2-histogram bucket geometry and quantile monotonicity, ring-buffer
   overflow semantics, Chrome-trace JSON well-formedness (via the Json
   parser), and the disabled-mode zero-cost contract. *)

(* Every test runs against a clean, enabled registry and leaves the
   global switch off, so no other suite sees stray spans or counters. *)
let with_obs ?(enabled = true) f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" (fun () -> Obs.current_depth ()))
      in
      Alcotest.(check int) "depth inside inner" 2 r;
      Alcotest.(check int) "all spans closed" 0 (Obs.current_depth ());
      let spans = Obs.span_events () in
      Alcotest.(check int) "two spans recorded" 2 (List.length spans);
      (* spans are recorded at END, so inner precedes outer *)
      let inner = List.nth spans 0 and outer = List.nth spans 1 in
      Alcotest.(check string) "inner first" "inner" inner.Obs.sname;
      Alcotest.(check string) "outer second" "outer" outer.Obs.sname;
      Alcotest.(check int) "outer at depth 0" 0 outer.Obs.sdepth;
      Alcotest.(check int) "inner at depth 1" 1 inner.Obs.sdepth;
      (* child interval within the parent interval *)
      Alcotest.(check bool) "child starts after parent" true
        (inner.Obs.st0_ms >= outer.Obs.st0_ms);
      Alcotest.(check bool) "child ends before parent" true
        (inner.Obs.st0_ms +. inner.Obs.sdur_ms
        <= outer.Obs.st0_ms +. outer.Obs.sdur_ms +. 1e-9);
      (* self time excludes the nested child *)
      Alcotest.(check bool) "parent self <= dur - child dur" true
        (outer.Obs.sself_ms <= outer.Obs.sdur_ms -. inner.Obs.sdur_ms +. 1e-9))

let test_span_end_on_exception () =
  with_obs (fun () ->
      (try Obs.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
      Alcotest.(check int) "span recorded despite raise" 1 (Obs.spans_total ());
      Alcotest.(check int) "stack unwound" 0 (Obs.current_depth ()))

let test_profile_aggregation () =
  with_obs (fun () ->
      for _ = 1 to 5 do
        Obs.with_span "walk" (fun () -> ())
      done;
      match Obs.Profile.find "walk" with
      | None -> Alcotest.fail "no profile row for walk"
      | Some r ->
          Alcotest.(check int) "count aggregated" 5 r.Obs.Profile.pcount;
          Alcotest.(check bool) "total >= self" true
            (r.Obs.Profile.ptotal_ms >= r.Obs.Profile.pself_ms))

let test_clock_monotonic () =
  let t0 = Obs.Clock.now_ms () in
  let rec spin n acc = if n = 0 then acc else spin (n - 1) (acc + n) in
  ignore (spin 10000 0);
  let t1 = Obs.Clock.now_ms () in
  Alcotest.(check bool) "clock never decreases" true (t1 >= t0);
  Alcotest.(check bool) "elapsed non-negative" true (Obs.Clock.elapsed_ms t0 >= 0.)

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let test_ring_overflow_keeps_newest () =
  with_obs (fun () ->
      Obs.set_ring_capacity 8;
      for i = 1 to 20 do
        Obs.instant (Printf.sprintf "ev%d" i)
      done;
      Alcotest.(check int) "ring holds capacity" 8 (Obs.event_count ());
      Alcotest.(check int) "overflow counted" 12 (Obs.dropped ());
      let names =
        List.map
          (function Obs.Instant { iname; _ } -> iname | Obs.Span s -> s.Obs.sname)
          (Obs.events ())
      in
      Alcotest.(check (list string)) "newest 8 survive, oldest first"
        [ "ev13"; "ev14"; "ev15"; "ev16"; "ev17"; "ev18"; "ev19"; "ev20" ]
        names;
      (* restore the default capacity for the other tests *)
      Obs.set_ring_capacity 32768)

let test_spans_total_survives_eviction () =
  with_obs (fun () ->
      Obs.set_ring_capacity 4;
      for _ = 1 to 10 do
        Obs.with_span "s" (fun () -> ())
      done;
      Alcotest.(check int) "aggregate count survives" 10 (Obs.spans_total ());
      Alcotest.(check int) "ring truncated" 4 (Obs.event_count ());
      (match Obs.Profile.find "s" with
      | Some r -> Alcotest.(check int) "profile sees all 10" 10 r.Obs.Profile.pcount
      | None -> Alcotest.fail "profile row missing");
      Obs.set_ring_capacity 32768)

(* ------------------------------------------------------------------ *)
(* Metrics: counters and gauges *)

let test_counters_and_gauges () =
  with_obs (fun () ->
      Obs.Metrics.incr "c";
      Obs.Metrics.incr ~by:4 "c";
      Alcotest.(check int) "counter sums" 5 (Obs.Metrics.counter "c");
      Alcotest.(check int) "unknown counter is 0" 0 (Obs.Metrics.counter "nope");
      let h = Obs.Counter.make "c" in
      Obs.Counter.add h 10;
      Alcotest.(check int) "handle shares the counter" 15 (Obs.Metrics.counter "c");
      Alcotest.(check int) "handle reads back" 15 (Obs.Counter.value h);
      Obs.Metrics.set_gauge "g" 2.5;
      Alcotest.(check (option (float 1e-9))) "gauge set" (Some 2.5) (Obs.Metrics.gauge "g"))

(* ------------------------------------------------------------------ *)
(* Metrics: histogram geometry and quantiles *)

let bucket_boundaries_exact =
  QCheck.Test.make ~name:"bucket boundaries: lo inclusive, hi exclusive" ~count:200
    QCheck.(int_range 1 62)
    (fun i ->
      let lo = Obs.Metrics.bucket_lo i and hi = Obs.Metrics.bucket_hi i in
      Obs.Metrics.bucket_of lo = i
      && Obs.Metrics.bucket_of (hi *. (1. -. epsilon_float)) = i
      && Obs.Metrics.bucket_of hi = i + 1)

let bucket_of_total =
  QCheck.Test.make ~name:"bucket_of: every non-negative float lands in a bucket"
    ~count:500 QCheck.(pos_float)
    (fun v ->
      let i = Obs.Metrics.bucket_of v in
      0 <= i && i <= 63
      && (i = 63 || v < Obs.Metrics.bucket_hi i)
      && v >= Obs.Metrics.bucket_lo i)

let quantiles_monotone =
  QCheck.Test.make ~name:"quantiles: monotone in q, clamped to [min,max]" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (float_bound_exclusive 1000.))
    (fun samples ->
      Obs.reset ();
      Obs.set_enabled true;
      List.iter (fun v -> Obs.Metrics.observe "h" (Float.abs v)) samples;
      let q p = Option.get (Obs.Metrics.quantile "h" p) in
      let qs = List.map q [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ] in
      let rec monotone = function
        | a :: (b :: _ as tl) -> a <= b && monotone tl
        | _ -> true
      in
      let s = Option.get (Obs.Metrics.summary "h") in
      Obs.set_enabled false;
      Obs.reset ();
      monotone qs
      && List.for_all (fun v -> v >= s.Obs.Metrics.minv && v <= s.Obs.Metrics.maxv) qs
      && s.Obs.Metrics.count = List.length samples)

let test_summary_known_values () =
  with_obs (fun () ->
      (* 100 samples of 1.0: every quantile must be within [min,max] = 1.0 *)
      for _ = 1 to 100 do
        Obs.Metrics.observe "ones" 1.0
      done;
      match Obs.Metrics.summary "ones" with
      | None -> Alcotest.fail "summary missing"
      | Some s ->
          Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
          Alcotest.(check (float 1e-9)) "sum" 100.0 s.Obs.Metrics.sum;
          Alcotest.(check (float 1e-9)) "p50 clamps to the exact value" 1.0 s.Obs.Metrics.p50;
          Alcotest.(check (float 1e-9)) "p99 clamps to the exact value" 1.0 s.Obs.Metrics.p99)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_chrome_trace_parses () =
  with_obs (fun () ->
      Obs.with_span ~attrs:[ ("k", "v\"with\nquotes") ] "outer" (fun () ->
          Obs.instant ~cat:"test" "tick");
      let j = Json.parse (Obs.chrome_trace ()) in
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check int) "both events exported" 2 (List.length evs);
          List.iter
            (fun ev ->
              match (Json.member "ph" ev, Json.member "ts" ev) with
              | Some (Json.String ph), Some (Json.Int _ | Json.Float _) ->
                  Alcotest.(check bool) "ph is X or i" true (ph = "X" || ph = "i")
              | _ -> Alcotest.fail "event missing ph/ts")
            evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_metrics_json_parses () =
  with_obs (fun () ->
      Obs.Metrics.incr ~by:3 "reads";
      Obs.Metrics.observe "lat" 5.0;
      Obs.with_span "s" (fun () -> ());
      let j = Json.parse (Obs.metrics_json ~extra:[ ("mode", "test") ] ()) in
      (match Json.member_exn "counters" j with
      | Json.Obj kvs ->
          Alcotest.(check bool) "counter exported" true
            (List.assoc_opt "reads" kvs = Some (Json.Int 3))
      | _ -> Alcotest.fail "counters not an object");
      (match Json.member_exn "histograms" j with
      | Json.Obj [ ("lat", Json.Obj fields) ] ->
          Alcotest.(check bool) "histogram has p95" true
            (List.mem_assoc "p95" fields && List.mem_assoc "count" fields)
      | _ -> Alcotest.fail "histograms malformed");
      match Json.member "meta" j with
      | Some (Json.Obj kvs) ->
          Alcotest.(check bool) "meta passthrough" true
            (List.assoc_opt "mode" kvs = Some (Json.String "test"))
      | _ -> Alcotest.fail "meta missing")

(* ------------------------------------------------------------------ *)
(* Disabled mode: zero events, zero drift *)

let test_disabled_zero_cost () =
  with_obs ~enabled:false (fun () ->
      let r = Obs.with_span "s" (fun () -> 42) in
      Alcotest.(check int) "with_span passes the value through" 42 r;
      Obs.instant "i";
      Obs.Metrics.incr "c";
      Obs.Metrics.observe "h" 1.0;
      Obs.Metrics.set_gauge "g" 1.0;
      let h = Obs.Counter.make "c2" in
      Obs.Counter.incr h;
      Alcotest.(check int) "no events" 0 (Obs.event_count ());
      Alcotest.(check int) "no spans" 0 (Obs.spans_total ());
      Alcotest.(check int) "counter did not drift" 0 (Obs.Metrics.counter "c");
      Alcotest.(check int) "handle did not drift" 0 (Obs.Counter.value h);
      Alcotest.(check bool) "no histogram" true (Obs.Metrics.summary "h" = None);
      Alcotest.(check bool) "no gauge" true (Obs.Metrics.gauge "g" = None);
      Alcotest.(check (list string)) "no profile rows" []
        (List.map (fun r -> r.Obs.Profile.pname) (Obs.Profile.rows ())))

let test_disabled_stack_instrumentation_silent () =
  (* the instrumented stack records nothing while the switch is off *)
  with_obs ~enabled:false (fun () ->
      let k = Kstate.boot () in
      let w = Workload.create k in
      Workload.run w;
      let s = Visualinux.attach k in
      let _, _, stats = Visualinux.vplot s {|define B as Box<task_struct> [
  Text pid
]
plot B(${&init_task})
|} in
      Alcotest.(check int) "plot_stats.spans is 0" 0 stats.Visualinux.spans;
      Alcotest.(check bool) "plot_stats.trace is None" true (stats.Visualinux.trace = None);
      Alcotest.(check int) "no events leaked" 0 (Obs.event_count ());
      Alcotest.(check int) "no counters leaked" 0 (Obs.Metrics.counter "target.reads"))

let test_enabled_stack_records_spans () =
  with_obs (fun () ->
      let k = Kstate.boot () in
      let w = Workload.create k in
      Workload.run w;
      let s = Visualinux.attach k in
      let _, _, stats = Visualinux.vplot s {|define B as Box<task_struct> [
  Text pid
]
plot B(${&init_task})
|} in
      Alcotest.(check bool) "spans recorded" true (stats.Visualinux.spans > 0);
      (match stats.Visualinux.trace with
      | Some (_ :: _) -> ()
      | Some [] | None -> Alcotest.fail "trace missing");
      Alcotest.(check bool) "obs counts the reads" true (Obs.Metrics.counter "target.reads" > 0);
      Alcotest.(check bool) "viewcl.run span present" true
        (Obs.Profile.find "viewcl.run" <> None);
      Alcotest.(check bool) "core.vplot span present" true
        (Obs.Profile.find "core.vplot" <> None))

(* ------------------------------------------------------------------ *)

let qt t = QCheck_alcotest.to_alcotest t

let suite =
  [ Alcotest.test_case "span nesting: depth, order, containment, self-time" `Quick
      test_span_nesting;
    Alcotest.test_case "span end matches begin even on exceptions" `Quick
      test_span_end_on_exception;
    Alcotest.test_case "profile rows aggregate across spans" `Quick test_profile_aggregation;
    Alcotest.test_case "clock is monotone" `Quick test_clock_monotonic;
    Alcotest.test_case "ring overflow keeps the newest events" `Quick
      test_ring_overflow_keeps_newest;
    Alcotest.test_case "aggregates survive ring eviction" `Quick
      test_spans_total_survives_eviction;
    Alcotest.test_case "counters, handles, gauges" `Quick test_counters_and_gauges;
    qt bucket_boundaries_exact;
    qt bucket_of_total;
    qt quantiles_monotone;
    Alcotest.test_case "quantiles clamp to [min,max] on constant data" `Quick
      test_summary_known_values;
    Alcotest.test_case "Chrome trace JSON parses (ph/ts per event)" `Quick
      test_chrome_trace_parses;
    Alcotest.test_case "metrics JSON parses (counters/histograms/meta)" `Quick
      test_metrics_json_parses;
    Alcotest.test_case "disabled: zero events, zero counter drift" `Quick
      test_disabled_zero_cost;
    Alcotest.test_case "disabled: instrumented stack is silent" `Quick
      test_disabled_stack_instrumentation_silent;
    Alcotest.test_case "enabled: vplot records spans through the stack" `Quick
      test_enabled_stack_records_spans ]
