# Tier-1 verification gate.
#
# `make check` is what CI (and the next contributor) should run: it
# builds everything including the examples, runs the full test suite,
# and does one bench smoke iteration so that a broken build or a broken
# evaluation shape is caught mechanically.

.PHONY: all test bench check clean

all:
	dune build @all

test: all
	dune runtest

bench:
	dune exec bench/main.exe

check: test bench

clean:
	dune clean
