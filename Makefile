# Tier-1 verification gate.
#
# `make check` is what CI (and the next contributor) should run: it
# builds everything including the examples, runs the full test suite,
# exercises the fault-injected transport path (bench smoke at two fault
# rates), lints formatting, and does one full bench iteration so that a
# broken build or a broken evaluation shape is caught mechanically.

.PHONY: all test bench bench-smoke chaos-smoke perf-smoke par-smoke session-smoke campaign-smoke crash-smoke obs-smoke slo-smoke bench-compare fmt-check ci check clean

all:
	dune build @all

test: all
	dune runtest

bench:
	dune exec bench/main.exe

# Degradation table only: the Table 2 workload over a faulty serial
# link at a clean and a lossy rate. Asserts every plot completes and
# prints the breaker/retry/budget counters.
bench-smoke: all
	dune exec bench/main.exe -- --fault-rate 0.0,0.05 --profile kgdb_rpi400 --deadline-ms 500 --seed 7

# Chaos smoke: the Table 2 figures extracted while seeded mutators race
# the walk (clean, 5%, 20%). The bench itself asserts zero uncaught
# exceptions and cached-vs-cold render identity at every rate; the awk
# pass additionally requires at least one torn section at a nonzero
# rate and a nonzero sanity.checked counter in the metrics artifact, so
# neither the harness nor the sanitizer can go silently vacuous.
chaos-smoke: all
	dune exec bench/main.exe -- --chaos-rate 0.0,0.05,0.2 --seed 803845 > chaos_smoke.out \
		|| { cat chaos_smoke.out; rm -f chaos_smoke.out; exit 1; }
	@cat chaos_smoke.out
	@awk '/^0\.050/ { torn = $$5 } END { exit (torn + 0 < 1) ? 1 : 0 }' chaos_smoke.out \
		|| { echo "chaos-smoke: no torn sections at rate 0.05 (harness vacuous)"; \
		     rm -f chaos_smoke.out; exit 1; }
	@grep -o '"sanity.checked":[0-9]*' BENCH_chaos.json | grep -qv ':0$$' \
		|| { echo "chaos-smoke: sanity.checked is 0 (sanitizer vacuous)"; \
		     rm -f chaos_smoke.out; exit 1; }
	@rm -f chaos_smoke.out
	@echo "chaos-smoke: ok"

# Perf smoke (ISSUE 5): the repeat-plot workload over the slow KGDB
# link profile. The bench asserts the cache gates internally: box
# hit-rate >= 50%, wire fetches per warm refresh at least 5x below the
# uncached control, and warm-refresh p50 at least 3x under the cold
# plot p50.
perf-smoke: all
	dune exec bench/main.exe -- --repeat-plot 5 --seed 7
	@echo "perf-smoke: ok"

# Parallel-extraction smoke (ISSUE 10): the Table 2 figures through a
# 4-domain work-stealing pool vs. the 1-pool identity baseline, under
# plain, split-chaos and injection scenarios.  The bench asserts the
# gates in-process: renders, fault journals, chaos fired counts and
# merged read counters byte-identical across domain counts, the classic
# unsharded interpreter rendering identically, and the LPT schedule
# model clearing 2x at 4 domains (the recorded target is 3x, see
# EXPERIMENTS.md).  Writes BENCH_par.json, which bench-compare then
# gates on.
par-smoke: all
	dune exec bench/main.exe -- --domains 4 --seed 7
	@echo "par-smoke: ok"

# Session smoke (ISSUE 6): the multi-session isolation bench.  The
# bench asserts the gates in-process: one session storming at the
# given fault rate (plus one forced breaker-Open round) leaves the
# healthy sessions' p95 within 25% of an identically-seeded all-healthy
# twin fleet, their renders byte-identical to cache-off solo
# extractions, every refusal a typed Rejected (capacity included), the
# cold-plot read cache actually shared across sessions, and a killed
# fleet replayed from its journal snapshot with pane/box ids
# reproduced.  Writes BENCH_sessions.json, which bench-compare then
# gates on.
session-smoke: all
	dune exec bench/main.exe -- --sessions 4 --fault-rate 0.2 --seed 7
	@echo "session-smoke: ok"

# Campaign smoke (ISSUE 7/9): the committed chaos campaigns, with
# their expect-gates asserted in-process — crash_storm (a bit-flipped
# WAL record and two full crash-recoveries from the durable journal,
# one mid-outage), flap_recover (hard outages on a replica-less
# target: quarantine, [STALE] service, bounded TTR) then gray_ramp (a
# gray-failure ramp hedged to a healthy replica before the breaker
# opens, byte-identity asserted).  gray_ramp runs last so
# BENCH_campaign.json holds its numbers, which bench-compare then
# gates on.
campaign-smoke: all
	dune exec bench/main.exe -- --campaign campaigns/crash_storm.campaign --seed 7
	dune exec bench/main.exe -- --campaign campaigns/flap_recover.campaign --seed 7
	dune exec bench/main.exe -- --campaign campaigns/gray_ramp.campaign --seed 7
	@echo "campaign-smoke: ok"

# Crash-point torture (ISSUE 9): record a run of journaled panel ops,
# then crash at EVERY record boundary and recover three ways per point
# (exact prefix, torn final record, bit-flipped earlier record).  The
# bench asserts the gates in-process: every clean prefix recovers
# bit-identically (pane ids, box ids, rendered text), torn tails are
# dropped not tripped over, a flipped bit degrades only the owning
# session (typed salvage), and an unsalvageable snapshot quarantines
# every session rather than raising.  The grep makes non-vacuity
# mechanical: the artifact must show crash points and salvages.
crash-smoke: all
	dune exec bench/main.exe -- --crash campaigns/crash_storm.campaign --seed 7
	@grep -o '"crash.points":[0-9.]*' BENCH_crash.json | grep -qv ':0\.' \
		|| { echo "crash-smoke: no crash points exercised (harness vacuous)"; exit 1; }
	@grep -o '"crash.salvaged":[0-9.]*' BENCH_crash.json | grep -qv ':0\.' \
		|| { echo "crash-smoke: no salvages observed (corruption path vacuous)"; exit 1; }
	@echo "crash-smoke: ok"

# Wall-clock regression guard: fresh BENCH_smoke.json vs. the committed
# baseline (25% relative budget with an absolute slack floor).  Also
# checks the BENCH_sessions.json artifact from session-smoke for
# per-session p95 histograms and the cross-session hit-rate gauge.
bench-compare:
	sh scripts/bench_compare.sh

# Observability overhead guard: bench smoke with tracing off vs. on,
# twice each; fails if the enabled-mode geomean slowdown exceeds 2x
# (tunable via OBS_SMOKE_BUDGET).
obs-smoke: all
	sh scripts/obs_smoke.sh

# SLO burn-rate gate (ISSUE 8): the sessions bench's sick session must
# burn its clean_reads error budget >= 1x while every healthy session
# stays quiet, and histogram exemplars must carry trace ids.  Depends
# on obs-smoke so the <= 2x overhead guard always runs alongside it.
slo-smoke: all obs-smoke
	sh scripts/slo_smoke.sh

# No ocamlformat in the build image, so the formatting gate is a
# whitespace lint: no tabs or trailing blanks in source files.
fmt-check:
	@if grep -rnP '[ \t]+$$|\t' --include='*.ml' --include='*.mli' lib bin bench test; then \
		echo "fmt-check: tabs or trailing whitespace found (see above)"; exit 1; \
	else echo "fmt-check: clean"; fi

ci: all test bench-smoke session-smoke campaign-smoke crash-smoke par-smoke bench-compare chaos-smoke perf-smoke obs-smoke slo-smoke fmt-check

check: ci bench

clean:
	dune clean
