#!/bin/sh
# Observability overhead guard (ISSUE 3): run the bench smoke workload
# with tracing off and on, interleaved (off,on,off,on) so drift in
# machine load hits both sides, and fail if the enabled-mode geomean
# slowdown exceeds the budget.
#
# The budget is deliberately loose (2x): the guard exists to catch an
# accidentally-hot instrumentation path (e.g. an allocation on every
# target read while disabled), not to benchmark precisely.
set -eu

BUDGET="${OBS_SMOKE_BUDGET:-2.0}"
ARGS="--fault-rate 0.0,0.05 --profile kgdb_rpi400 --deadline-ms 500 --seed 7"
BIN="_build/default/bench/main.exe"

[ -x "$BIN" ] || dune build bench/main.exe

run_ms() {
    # wall-clock one bench run, in ms
    start=$(date +%s%N)
    "$BIN" $ARGS --obs "$1" > /dev/null
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}

off1=$(run_ms off); on1=$(run_ms on)
off2=$(run_ms off); on2=$(run_ms on)

echo "obs-smoke: off ${off1}/${off2} ms, on ${on1}/${on2} ms"

awk -v o1="$off1" -v o2="$off2" -v n1="$on1" -v n2="$on2" -v budget="$BUDGET" 'BEGIN {
    # guard against sub-ms timer resolution
    if (o1 < 1) o1 = 1; if (o2 < 1) o2 = 1;
    if (n1 < 1) n1 = 1; if (n2 < 1) n2 = 1;
    geomean = sqrt((n1 / o1) * (n2 / o2));
    printf "obs-smoke: geomean slowdown %.2fx (budget %.1fx)\n", geomean, budget;
    exit (geomean > budget) ? 1 : 0;
}'
