#!/bin/sh
# SLO burn-rate gate (ISSUE 8): run the multi-session isolation bench
# (one sick session storming a shared wire, three healthy neighbours)
# and assert, from the exported slo.* gauges, that the burn-rate engine
# actually discriminates:
#
#   - the sick session's clean_reads objective (faults per read,
#     target 0.99) must be burning its error budget at >= 1x — the
#     multi-window min(fast, slow) rate, so a single noisy epoch
#     cannot fire it;
#   - every healthy session's clean_reads burn must be exactly quiet
#     (< 1x; in practice 0 — fault isolation means their reads see
#     none of the storm);
#   - at least one histogram exemplar must carry a real trace id, so
#     a burning budget can be chased to the causal trace behind it.
#
# The obs-on overhead guard (geomean <= 2x, scripts/obs_smoke.sh) is a
# prerequisite via the Makefile: slo-smoke depends on obs-smoke, so a
# burning SLO can never be "fixed" by instrumentation that slows the
# fleet into compliance.
set -eu

FILE="BENCH_sessions.json"
BIN="_build/default/bench/main.exe"

[ -x "$BIN" ] || dune build bench/main.exe

"$BIN" --sessions 4 --fault-rate 0.2 --seed 7 > /dev/null

[ -f "$FILE" ] || { echo "slo-smoke: $FILE missing"; exit 1; }

# burn SID: the exported slo.s<SID>.clean_reads.burn_rate gauge
burn() {
    grep -o "\"slo\.s$1\.clean_reads\.burn_rate\":[0-9.eE+-]*" "$FILE" | cut -d: -f2
}

fail=0

sick=$(burn 1)
if [ -z "$sick" ]; then
    echo "slo-smoke: no slo.s1.clean_reads.burn_rate gauge in $FILE (engine vacuous)"
    fail=1
else
    awk -v b="$sick" 'BEGIN {
        printf "slo-smoke: sick session s1 clean_reads burn %.2fx (need >= 1)\n", b;
        exit (b >= 1) ? 0 : 1;
    }' || fail=1
fi

for sid in 2 3 4; do
    quiet=$(burn "$sid")
    if [ -z "$quiet" ]; then
        echo "slo-smoke: no slo.s$sid.clean_reads.burn_rate gauge in $FILE"
        fail=1
    else
        awk -v b="$quiet" -v s="$sid" 'BEGIN {
            printf "slo-smoke: healthy session s%s clean_reads burn %.2fx (need < 1)\n", s, b;
            exit (b < 1) ? 0 : 1;
        }' || fail=1
    fi
done

# at least one exemplar with a nonzero trace id
if grep -o '"exemplars":{.*' "$FILE" | grep -q '"trace":[1-9]'; then
    echo "slo-smoke: histogram exemplars carry trace ids"
else
    echo "slo-smoke: no histogram exemplar with a nonzero trace id in $FILE"
    fail=1
fi

[ "$fail" = 0 ] && echo "slo-smoke: ok"
exit "$fail"
