#!/bin/sh
# Performance-regression guard (ISSUE 4): compare the freshly written
# BENCH_smoke.json bench.plot_ms wall-clock sum against the committed
# baseline (git show HEAD:BENCH_smoke.json).  Fails when the new sum
# exceeds the baseline by more than the relative budget, with an
# absolute slack floor so sub-100ms timer noise cannot trip the gate
# on a fast machine.  Skips (exit 0) when there is no committed
# baseline to compare against.
set -eu

BUDGET_PCT="${BENCH_COMPARE_BUDGET_PCT:-25}"
SLACK_MS="${BENCH_COMPARE_SLACK_MS:-100}"
FILE="${1:-BENCH_smoke.json}"

sum_of() {
    grep -o '"bench.plot_ms":{[^}]*}' | sed -n 's/.*"sum":\([0-9.eE+-]*\).*/\1/p'
}

[ -f "$FILE" ] || { echo "bench-compare: $FILE missing (run make bench-smoke first)"; exit 1; }

base=$(git show HEAD:"$FILE" 2>/dev/null | sum_of)
cur=$(sum_of < "$FILE")

if [ -z "$base" ]; then
    echo "bench-compare: no committed baseline for $FILE - skipping"
    exit 0
fi
if [ -z "$cur" ]; then
    echo "bench-compare: $FILE has no bench.plot_ms histogram"
    exit 1
fi

awk -v base="$base" -v cur="$cur" -v pct="$BUDGET_PCT" -v slack="$SLACK_MS" 'BEGIN {
    budget = base * (1 + pct / 100);
    if (budget < base + slack) budget = base + slack;
    printf "bench-compare: bench.plot_ms sum %.2f ms vs baseline %.2f ms (budget %.2f ms)\n",
        cur, base, budget;
    exit (cur > budget) ? 1 : 0;
}'
