#!/bin/sh
# Performance-regression guard (ISSUE 4, extended by ISSUE 5): compare
# the freshly written BENCH_smoke.json against the committed baseline
# (git show HEAD:BENCH_smoke.json).
#
#   - bench.plot_ms sum        wall-clock for the whole smoke workload
#   - phase.fetch_ms p95       per-plot target-read tail
#   - phase.interp_ms p95      per-plot interpretation tail
#
# Each gate fails when the new value exceeds the baseline by more than
# the relative budget, with an absolute slack floor so sub-100ms timer
# noise cannot trip it on a fast machine (the gates are upper bounds
# only: getting faster always passes).  The read-cache counters from
# the ISSUE 5 fast path must also be present in the fresh artifact, so
# the caching layer cannot be silently compiled out.  Skips (exit 0)
# when there is no committed baseline to compare against.
set -eu

BUDGET_PCT="${BENCH_COMPARE_BUDGET_PCT:-25}"
SLACK_MS="${BENCH_COMPARE_SLACK_MS:-100}"
FILE="${1:-BENCH_smoke.json}"

# histo_field NAME FIELD < json: one numeric field of one histogram
histo_field() {
    grep -o "\"$1\":{[^}]*}" | sed -n "s/.*\"$2\":\([0-9.eE+-]*\).*/\1/p"
}

[ -f "$FILE" ] || { echo "bench-compare: $FILE missing (run make bench-smoke first)"; exit 1; }

baseline=$(git show HEAD:"$FILE" 2>/dev/null || true)

if [ -z "$baseline" ]; then
    echo "bench-compare: no committed baseline for $FILE - skipping"
    exit 0
fi

# the ISSUE 5 cache counters must exist in the fresh artifact
for c in cache.hits cache.misses cache.coalesced_reads cache.box_hits; do
    grep -q "\"$c\":" "$FILE" \
        || { echo "bench-compare: counter $c missing from $FILE (cache layer vacuous)"; exit 1; }
done

fail=0

# gate NAME FIELD LABEL: upper-bound compare of one histogram field
gate() {
    base=$(printf '%s' "$baseline" | histo_field "$1" "$2")
    cur=$(histo_field "$1" "$2" < "$FILE")
    if [ -z "$base" ]; then
        echo "bench-compare: baseline has no $1 - skipping that gate"
        return 0
    fi
    if [ -z "$cur" ]; then
        echo "bench-compare: $FILE has no $1 histogram"
        fail=1
        return 0
    fi
    awk -v base="$base" -v cur="$cur" -v pct="$BUDGET_PCT" -v slack="$SLACK_MS" -v label="$3" 'BEGIN {
        budget = base * (1 + pct / 100);
        if (budget < base + slack) budget = base + slack;
        printf "bench-compare: %-22s %10.2f ms vs baseline %10.2f ms (budget %10.2f ms)\n",
            label, cur, base, budget;
        exit (cur > budget) ? 1 : 0;
    }' || fail=1
}

gate "bench.plot_ms" "sum" "bench.plot_ms sum"
gate "phase.fetch_ms" "p95" "phase.fetch_ms p95"
gate "phase.interp_ms" "p95" "phase.interp_ms p95"

# The ISSUE 6 multi-session artifact: per-session op-latency p95s and
# the cross-session cache hit rate must be present, so neither the
# per-session accounting nor the shared-cache path can go silently
# vacuous.  The isolation ratio itself is asserted inside the bench;
# here we re-check the recorded value as a belt-and-braces bound.
SESS="BENCH_sessions.json"
if [ ! -f "$SESS" ]; then
    echo "bench-compare: $SESS missing (run make session-smoke first)"
    fail=1
else
    nsess=$(grep -o '"session\.[0-9][0-9]*\.op_ms":{[^}]*"p95"' "$SESS" | wc -l)
    if [ "$nsess" -lt 2 ]; then
        echo "bench-compare: $SESS has $nsess per-session op_ms p95 histograms (need >= 2)"
        fail=1
    else
        echo "bench-compare: $SESS per-session p95 present for $nsess sessions"
    fi
    if ! grep -q '"sessions.cross_hit_rate":' "$SESS"; then
        echo "bench-compare: $SESS has no sessions.cross_hit_rate gauge"
        fail=1
    fi
    ratio=$(grep -o '"sessions.p95_ratio":[0-9.eE+-]*' "$SESS" | cut -d: -f2)
    if [ -z "$ratio" ]; then
        echo "bench-compare: $SESS has no sessions.p95_ratio gauge"
        fail=1
    else
        awk -v r="$ratio" 'BEGIN {
            printf "bench-compare: sessions.p95_ratio       %10.2f    (budget       1.30)\n", r;
            exit (r > 1.30) ? 1 : 0;
        }' || fail=1
    fi
    # ISSUE 8: the SLO engine's gauges and the histogram exemplars must
    # be present, so neither can be silently compiled out
    for g in slo.s1.clean_reads.burn_rate slo.s1.clean_reads.budget_remaining; do
        grep -q "\"$g\":" "$SESS" \
            || { echo "bench-compare: $SESS has no $g gauge (SLO engine vacuous)"; fail=1; }
    done
    if grep -q '"exemplars":{' "$SESS" && grep -q '"trace":[1-9]' "$SESS"; then
        echo "bench-compare: $SESS SLO gauges + exemplar trace ids present"
    else
        echo "bench-compare: $SESS has no histogram exemplar trace ids"
        fail=1
    fi
fi

# The ISSUE 7 campaign artifact (gray_ramp, written last by
# campaign-smoke): the health machinery's headline numbers must be
# present and sane — the expect-gates proper are asserted in-process
# by the bench; here we re-check the recorded values as belt-and-braces
# bounds.
CAMP="BENCH_campaign.json"
if [ ! -f "$CAMP" ]; then
    echo "bench-compare: $CAMP missing (run make campaign-smoke first)"
    fail=1
else
    for g in campaign.ttr_ops campaign.unhealthy_ops campaign.availability.recovered; do
        grep -q "\"$g\":" "$CAMP" \
            || { echo "bench-compare: $CAMP has no $g gauge"; fail=1; }
    done
    ratio=$(grep -o '"campaign.p95_ratio":[0-9.eE+-]*' "$CAMP" | cut -d: -f2)
    if [ -z "$ratio" ]; then
        echo "bench-compare: $CAMP has no campaign.p95_ratio gauge"
        fail=1
    else
        awk -v r="$ratio" 'BEGIN {
            printf "bench-compare: campaign.p95_ratio       %10.2f    (budget       1.30)\n", r;
            exit (r > 1.30) ? 1 : 0;
        }' || fail=1
    fi
    hedged=$(grep -o '"campaign.hedged_ops":[0-9.eE+-]*' "$CAMP" | cut -d: -f2)
    if [ -z "$hedged" ]; then
        echo "bench-compare: $CAMP has no campaign.hedged_ops gauge"
        fail=1
    else
        awk -v h="$hedged" 'BEGIN {
            printf "bench-compare: campaign.hedged_ops      %10.0f    (need     >= 1)\n", h;
            exit (h >= 1) ? 0 : 1;
        }' || fail=1
    fi
    # ISSUE 8: SLO gauges and exemplars in the campaign artifact too
    grep -q '"slo\.s1\.op_p95\.burn_rate":' "$CAMP" \
        || { echo "bench-compare: $CAMP has no slo.s1.op_p95.burn_rate gauge"; fail=1; }
    if grep -q '"exemplars":{' "$CAMP" && grep -q '"trace":[1-9]' "$CAMP"; then
        echo "bench-compare: $CAMP SLO gauges + exemplar trace ids present"
    else
        echo "bench-compare: $CAMP has no histogram exemplar trace ids"
        fail=1
    fi
fi

# The ISSUE 10 parallel-extraction artifact: the cross-domain identity
# asserts run in-process; here we require the artifact to prove the
# 4-domain run actually happened and that the LPT schedule model
# cleared its floor — a missing or 1-domain BENCH_par.json fails the
# build.
PAR="BENCH_par.json"
if [ ! -f "$PAR" ]; then
    echo "bench-compare: $PAR missing (run make par-smoke first)"
    fail=1
else
    pdom=$(grep -o '"par.domains":[0-9.eE+-]*' "$PAR" | cut -d: -f2)
    if [ -z "$pdom" ]; then
        echo "bench-compare: $PAR has no par.domains gauge"
        fail=1
    else
        awk -v d="$pdom" 'BEGIN {
            printf "bench-compare: par.domains              %10.0f    (need     >= 4)\n", d;
            exit (d >= 4) ? 0 : 1;
        }' || fail=1
    fi
    speedup=$(grep -o '"par.speedup_4d":[0-9.eE+-]*' "$PAR" | cut -d: -f2)
    if [ -z "$speedup" ]; then
        echo "bench-compare: $PAR has no par.speedup_4d gauge"
        fail=1
    else
        awk -v s="$speedup" 'BEGIN {
            printf "bench-compare: par.speedup_4d           %10.2f    (need   >= 2.00)\n", s;
            exit (s >= 2.0) ? 0 : 1;
        }' || fail=1
    fi
    for g in par.serial_ms par.par_ms par.wall_speedup; do
        grep -q "\"$g\":" "$PAR" \
            || { echo "bench-compare: $PAR has no $g gauge"; fail=1; }
    done
fi

# The ISSUE 9 crash-torture artifact: every identity/salvage assert
# runs in-process; here we require the artifact to prove the torture
# actually covered crash points, salvaged corruption, and timed its
# recoveries — an empty or stale BENCH_crash.json fails the build.
CRASH="BENCH_crash.json"
if [ ! -f "$CRASH" ]; then
    echo "bench-compare: $CRASH missing (run make crash-smoke first)"
    fail=1
else
    points=$(grep -o '"crash.points":[0-9.eE+-]*' "$CRASH" | cut -d: -f2)
    if [ -z "$points" ]; then
        echo "bench-compare: $CRASH has no crash.points gauge"
        fail=1
    else
        awk -v p="$points" 'BEGIN {
            printf "bench-compare: crash.points             %10.0f    (need     >= 1)\n", p;
            exit (p >= 1) ? 0 : 1;
        }' || fail=1
    fi
    for g in crash.identical crash.salvaged; do
        grep -q "\"$g\":" "$CRASH" \
            || { echo "bench-compare: $CRASH has no $g gauge"; fail=1; }
    done
    recov=$(histo_field "crash.recover_ms" "count" < "$CRASH")
    if [ -z "$recov" ] || [ "$recov" = "0" ]; then
        echo "bench-compare: $CRASH has no crash.recover_ms histogram samples"
        fail=1
    else
        echo "bench-compare: $CRASH crash.recover_ms histogram present ($recov recoveries)"
    fi
    grep -q '"recovery.records_replayed":' "$CRASH" \
        || { echo "bench-compare: $CRASH has no recovery.records_replayed counter"; fail=1; }
fi

exit "$fail"
