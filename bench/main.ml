(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) against the simulated kernel.

   - Table 2: ULK figures ported, LoC per ViewCL program, Δ change class
   - Table 3: the ten ViewQL usability objectives, through vchat
   - Table 4: per-figure plotting cost under the GDB-QEMU and KGDB-rpi400
     latency profiles (total ms | ms/object | ms/KB, as in the paper)
   - Figure 4: the maple tree plot after the §3.1 ViewQL refinement
   - Figure 5: the StackRot trace (state transitions narrated)
   - Figure 7: the Dirty Pipe object graph after the §5.3 ViewQL
   - Bechamel micro-benchmarks: one Test.make per table/figure, plus the
     ablations called out in DESIGN.md.

   Absolute numbers differ from the paper (their substrate is a live
   kernel on real hardware; ours is a simulator), but the *shape* — which
   configuration wins and by roughly what factor — is asserted at the end. *)

let line = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n== %s\n%s\n" line title line

let fresh_session () =
  let kernel = Kstate.boot () in
  let w = Workload.create kernel in
  Workload.run w;
  (kernel, Visualinux.attach kernel)

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2 () =
  section "Table 2: representative ULK figures ported to the simulated Linux 6.1";
  let _, s = fresh_session () in
  Printf.printf "%-3s %-12s %-42s %5s %5s %6s %s\n" "#" "Figure" "Description" "LOC" "boxes"
    "reads" "Delta";
  let total_loc = ref 0 in
  List.iter
    (fun (sc : Scripts.script) ->
      let _, _, stats = Visualinux.plot_figure s sc in
      total_loc := !total_loc + Scripts.loc sc;
      Printf.printf "%-3d %-12s %-42s %5d %5d %6d %s\n" sc.Scripts.id
        (if String.length sc.Scripts.fig <= 5 then "Fig " ^ sc.Scripts.fig else sc.Scripts.fig)
        sc.Scripts.descr (Scripts.loc sc) stats.Visualinux.boxes stats.Visualinux.reads
        (Scripts.delta_glyph sc.Scripts.delta);
      assert (stats.Visualinux.boxes > 0))
    Scripts.table2;
  let changed =
    List.filter (fun sc -> sc.Scripts.delta <> Scripts.Negligible) Scripts.table2
  in
  let significant =
    List.filter (fun sc -> sc.Scripts.delta = Scripts.Significant) Scripts.table2
  in
  Printf.printf
    "\n%d figures, %d total LoC; %d/%d changed since 2.6.11, %d with replaced structures\n"
    (List.length Scripts.table2) !total_loc (List.length changed) (List.length Scripts.table2)
    (List.length significant)

(* ------------------------------------------------------------------ *)
(* Table 3 *)

let table3 () =
  section "Table 3: debugging objectives via vchat (NL -> ViewQL)";
  let _, s = fresh_session () in
  Printf.printf "%-10s %-66s %3s %7s %s\n" "Fig." "Objective" "QL" "updated" "ok";
  let all_ok = ref true in
  List.iter
    (fun (o : Objectives.objective) ->
      let sc = Option.get (Scripts.find o.Objectives.fig) in
      let pane, _, _ = Visualinux.plot_figure s sc in
      let prog, updated = Visualinux.vchat s ~pane:pane.Panel.pid o.Objectives.text in
      let loc = List.length (String.split_on_char '\n' prog) in
      let ok =
        List.for_all
          (fun (e : Objectives.expect) ->
            let affected =
              List.filter
                (fun b ->
                  let a = b.Vgraph.attrs in
                  (b.Vgraph.btype = e.Objectives.exp_type || b.Vgraph.bdef = e.Objectives.exp_type)
                  && (match e.Objectives.exp_attr with
                     | "view" -> a.Vgraph.view <> "default"
                     | "collapsed" -> a.Vgraph.collapsed
                     | "trimmed" -> a.Vgraph.trimmed
                     | "direction" -> a.Vgraph.direction = Vgraph.Vertical
                     | _ -> false))
                (Vgraph.boxes pane.Panel.graph)
            in
            List.length affected >= e.Objectives.exp_min)
          o.Objectives.expects
      in
      all_ok := !all_ok && ok;
      let text =
        if String.length o.Objectives.text > 64 then String.sub o.Objectives.text 0 63 ^ "..."
        else o.Objectives.text
      in
      Printf.printf "%-10s %-66s %3d %7d %s\n" o.Objectives.fig text loc updated
        (if ok then "yes" else "NO"))
    Objectives.all;
  Printf.printf "\nall %d objectives synthesized correctly: %b (paper: 10/10 with DeepSeek-V2)\n"
    (List.length Objectives.all) !all_ok;
  assert !all_ok

(* ------------------------------------------------------------------ *)
(* Table 4 *)

type t4row = {
  t4fig : string;
  qemu : float * float * float;  (** total ms | ms/object | ms/KB *)
  kgdb : float * float * float;
  viewql_ms : float;
}

let table4_rows () =
  let _, s = fresh_session () in
  List.map
    (fun (sc : Scripts.script) ->
      let pane, _, stats = Visualinux.plot_figure s sc in
      let st = { Target.reads = stats.Visualinux.reads; bytes = stats.Visualinux.read_bytes } in
      (* wire latency (simulated) + local interpretation work (measured) *)
      let cost profile = Target.simulated_ms profile st +. stats.Visualinux.wall_ms in
      let per_row total =
        ( total,
          total /. float_of_int (max 1 stats.Visualinux.boxes),
          total /. (float_of_int (max 1 stats.Visualinux.bytes) /. 1024.) )
      in
      (* ViewQL cost on the same plot (footnote 2: negligible) *)
      let t0 = Obs.Clock.now_ms () in
      ignore
        (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
           "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true");
      let viewql_ms = Obs.Clock.elapsed_ms t0 in
      { t4fig = sc.Scripts.fig; qemu = per_row (cost Target.qemu_local);
        kgdb = per_row (cost Target.kgdb_rpi400); viewql_ms })
    Scripts.table2

let table4 () =
  section "Table 4: plotting cost under GDB-QEMU vs KGDB-rpi400 link profiles";
  Printf.printf "(x | y | z) = total ms | ms per object | ms per KB of data structure\n\n";
  Printf.printf "%-12s | %8s %6s %7s | %9s %7s %8s\n" "Figure" "QEMU-x" "y" "z" "KGDB-x" "y" "z";
  let rows = table4_rows () in
  List.iter
    (fun r ->
      let qx, qy, qz = r.qemu and kx, ky, kz = r.kgdb in
      Printf.printf "%-12s | %8.1f %6.2f %7.1f | %9.1f %7.2f %8.1f\n" r.t4fig qx qy qz kx ky kz)
    rows;
  (* Shape assertions vs. the paper *)
  let ratios = List.map (fun r -> let qx, _, _ = r.qemu and kx, _, _ = r.kgdb in kx /. qx) rows in
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let avg_ratio = avg ratios in
  let avg_viewql = avg (List.map (fun r -> r.viewql_ms) rows) in
  let avg_qemu = avg (List.map (fun r -> let x, _, _ = r.qemu in x) rows) in
  Printf.printf "\nKGDB/QEMU mean slowdown: %.0fx (paper: ~50x per object)\n" avg_ratio;
  Printf.printf "mean ViewQL refinement cost: %.3f ms vs %.1f ms extraction " avg_viewql avg_qemu;
  Printf.printf "(paper footnote 2: ViewQL overhead negligible)\n";
  assert (avg_ratio > 15. && avg_ratio < 150.);
  assert (avg_viewql < avg_qemu)

(* ------------------------------------------------------------------ *)
(* Figure 4: the maple tree after the §3.1 ViewQL *)

let figure4 () =
  section "Figure 4: maple tree of a process address space (after ViewQL)";
  let _, s = fresh_session () in
  let sc = Option.get (Scripts.find "9-2") in
  let pane, res, _ = Visualinux.plot_figure s sc in
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       {|m = SELECT mm_struct FROM *
UPDATE m WITH view: show_mt
slots = SELECT maple_node.slots FROM *
UPDATE slots WITH collapsed: true
writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE writable_vmas WITH trimmed: true|});
  print_string (Render.ascii res.Viewcl.graph);
  (* the read-only segments survive; writable ones are gone *)
  let vmas = Vgraph.of_type res.Viewcl.graph "vm_area_struct" in
  let visible = List.filter (fun b -> not b.Vgraph.attrs.Vgraph.trimmed) vmas in
  Printf.printf "\nVMAs plotted: %d, read-only survivors: %d\n" (List.length vmas)
    (List.length visible);
  assert (List.length visible < List.length vmas);
  List.iter
    (fun b ->
      match Vgraph.field b "is_writable" with
      | Some (Vgraph.Fbool w) -> assert (not w)
      | _ -> ())
    visible

(* ------------------------------------------------------------------ *)
(* Figure 5: the StackRot kernel trace *)

let figure5 () =
  section "Figure 5: CVE-2023-3269 (StackRot) trace on the simulated kernel";
  let kernel, s = fresh_session () in
  let ctx = kernel.Kstate.ctx in
  let target = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  let mm = Ksyscall.mm_of kernel target in
  let mt = Kcontext.fld ctx mm "mm_struct" "mm_mt" in
  Printf.printf "// CPU #0                         | // CPU #1\n";
  Printf.printf "mm_read_lock(&mm->mmap_lock)      | mm_read_lock(&mm->mmap_lock)\n";
  Kmm.mmap_read_lock ctx mm ~cpu:0;
  Kmm.mmap_read_lock ctx mm ~cpu:1;
  Printf.printf "                                  | find_vma_prev() -> mas_walk()\n";
  let stale = Kmaple.read_nodes ctx mt in
  Printf.printf "                                  |   node pointers fetched (%d nodes)\n"
    (List.length stale);
  Printf.printf "expand_stack()                    |\n";
  Printf.printf "  mas_store_prealloc() -> mas_free|\n";
  let vma = Kmm.vma_alloc kernel.Kstate.mm mm ~start:0x7ffd_0000_0000 ~end_:0x7ffd_0001_0000
      ~flags:0x103 ~file:0 ~pgoff:0 in
  Kmaple.store_range ~free:(Kstate.ma_free_rcu kernel) (Kmm.tree_of kernel.Kstate.mm mm)
    ~lo:0x7ffd_0000_0000 ~hi:0x7ffd_0000_ffff vma;
  Printf.printf "    ma_free_rcu -> call_rcu (%d cb)|  // node is dead\n"
    (List.length (Krcu.pending kernel.Kstate.rcu ()));
  Kmm.mmap_read_unlock ctx mm;
  Printf.printf "mm_read_unlock(&mm->mmap_lock)    |\n";
  Printf.printf "... wait for RCU period ...       |\n";
  Krcu.run_grace_period kernel.Kstate.rcu;
  Printf.printf "rcu_do_batch() -> mt_free_rcu()   |\n";
  Printf.printf "  kmem_cache_free() // node freed | mas_prev()\n";
  Kmem.clear_faults ctx.Kcontext.mem;
  ignore (Kcontext.r64 ctx (List.hd stale) "maple_node" "parent");
  let faults = Kmem.faults ctx.Kcontext.mem in
  Printf.printf "                                  |   rcu_deref_check(node..)\n";
  List.iter (fun f -> Format.printf "                                  |   // %a@." Kmem.pp_fault f) faults;
  Kmm.mmap_read_unlock ctx mm;
  Printf.printf "                                  | mm_read_unlock(&mm->mmaplock)\n";
  assert (faults <> [])

(* ------------------------------------------------------------------ *)
(* Figure 7: Dirty Pipe *)

let figure7 () =
  section "Figure 7: CVE-2022-0847 (Dirty Pipe) object graph (after ViewQL)";
  let kernel, s = fresh_session () in
  let ctx = kernel.Kstate.ctx in
  let task = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  let _, file = Ksyscall.openat kernel task ~name:"test.txt" ~size:4096 in
  let pipe, _, _ = Ksyscall.pipe kernel task in
  for i = 1 to 16 do
    Ksyscall.write_pipe kernel pipe (Printf.sprintf "f%d" i);
    ignore (Kpipe.read ctx pipe)
  done;
  let buf = Ksyscall.splice kernel ~file ~pipe ~index:0 ~len:1 ~buggy:true in
  let shared_page = Kcontext.r64 ctx buf "pipe_buffer" "page" in
  let pane, res, _ = Visualinux.vplot s ~title:"Dirty Pipe" Scripts.cve_dirtypipe in
  let pages = Vgraph.of_type res.Viewcl.graph "page" in
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       {|file_pgc = SELECT file->pagecache FROM *
file_pgs = SELECT page FROM REACHABLE(file_pgc)
pipe_buf = SELECT pipe_inode_info->bufs FROM *
pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
UPDATE pipe_pgs \ file_pgs WITH trimmed: true
junk = SELECT pipe_buffer FROM * WHERE flags == 0
UPDATE junk WITH collapsed: true
boring = SELECT file FROM *
UPDATE boring WITH collapsed: true|});
  print_string (Render.ascii res.Viewcl.graph);
  let shared =
    List.filter
      (fun (b : Vgraph.box) -> (not b.Vgraph.attrs.Vgraph.trimmed) && b.Vgraph.addr = shared_page)
      pages
  in
  Printf.printf
    "\npages plotted: %d; the single page shared between test.txt and the pipe survives: %b\n"
    (List.length pages) (shared <> []);
  (* the buggy flag is visible on its pipe buffer *)
  let flagged =
    List.exists
      (fun b ->
        match Vgraph.field b "flags" with
        | Some (Vgraph.Fint f) -> f land Ktypes.pipe_buf_flag_can_merge <> 0
        | _ -> false)
      (Vgraph.of_type res.Viewcl.graph "pipe_buffer")
  in
  Printf.printf "erroneous PIPE_BUF_FLAG_CAN_MERGE visible in the plot: %b\n" flagged;
  assert (shared <> [] && flagged)

(* ------------------------------------------------------------------ *)
(* Scaling sweep: plot cost vs. kernel-state size. Supports the paper's
   observation that "plotting large data structures that frequently
   invoke C-expression evaluation" is what makes KGDB painful: cost
   grows with the object population, dominated by read count. *)

let scaling_sweep () =
  section "Scaling: extraction cost vs. workload size (Fig 16-2, file mappings)";
  Printf.printf "%-6s %6s %6s %7s | %9s %9s\n" "iters" "boxes" "reads" "bytes" "QEMU ms" "KGDB ms";
  let prev_reads = ref 0 in
  List.iter
    (fun iters ->
      let kernel = Kstate.boot () in
      let w = Workload.create kernel in
      Workload.run ~iters w;
      let s = Visualinux.attach kernel in
      let sc = Option.get (Scripts.find "16-2") in
      let _, _, stats = Visualinux.plot_figure s sc in
      let st = { Target.reads = stats.Visualinux.reads; bytes = stats.Visualinux.read_bytes } in
      Printf.printf "%-6d %6d %6d %7d | %9.2f %9.1f\n" iters stats.Visualinux.boxes
        stats.Visualinux.reads stats.Visualinux.bytes
        (Target.simulated_ms Target.qemu_local st +. stats.Visualinux.wall_ms)
        (Target.simulated_ms Target.kgdb_rpi400 st +. stats.Visualinux.wall_ms);
      assert (stats.Visualinux.reads >= !prev_reads);
      prev_reads := stats.Visualinux.reads)
    [ 1; 2; 4; 8; 12 ];
  print_endline "\n(read volume grows monotonically with state size; KGDB cost scales with it)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let run_bechamel tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"visualinux" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "%-52s %14.1f ns/run (%10.4f ms)\n" name ns (ns /. 1e6)
      | _ -> Printf.printf "%-52s (no estimate)\n" name)
    (List.sort compare rows)

let microbench () =
  section "Bechamel micro-benchmarks (one per table/figure + ablations)";
  let kernel, s = fresh_session () in
  let ctx = kernel.Kstate.ctx in
  let tgt = s.Visualinux.target in
  let fig34 = Option.get (Scripts.find "3-4") in
  let fig71 = Option.get (Scripts.find "7-1") in
  let fig92 = Option.get (Scripts.find "9-2") in
  let target = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  let mm = Ksyscall.mm_of kernel target in
  let mt = Kcontext.fld ctx mm "mm_struct" "mm_mt" in
  (* pre-extract a graph for the ViewQL benches *)
  let res = Viewcl.run ~cfg:(Visualinux.config ()) tgt fig34.Scripts.source in
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  let tests =
    [ (* Table 2: full extraction of a figure *)
      t "table2/extract-fig3-4" (fun () ->
          ignore (Viewcl.run ~cfg:(Visualinux.config ()) tgt fig34.Scripts.source));
      t "table2/extract-fig7-1" (fun () ->
          ignore (Viewcl.run ~cfg:(Visualinux.config ()) tgt fig71.Scripts.source));
      (* Table 3: NL synthesis and ViewQL application *)
      t "table3/vchat-synthesize" (fun () ->
          ignore (Vchat.synthesize "shrink tasks that have no address space"));
      t "table3/viewql-select-update" (fun () ->
          let sess = Viewql.make_session res.Viewcl.graph in
          ignore
            (Viewql.exec sess
               "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true"));
      (* Table 4: the heavy figure, i.e. the cost driver *)
      t "table4/extract-fig9-2-mapletree" (fun () ->
          ignore (Viewcl.run ~cfg:(Visualinux.config ()) tgt fig92.Scripts.source));
      (* Figure 4/7 pipeline pieces *)
      t "fig4/viewql-trim" (fun () ->
          let sess = Viewql.make_session res.Viewcl.graph in
          ignore
            (Viewql.exec sess
               "a = SELECT task_struct FROM * WHERE pid > 5\nUPDATE a WITH trimmed: true"));
      t "fig7/render-ascii" (fun () -> ignore (Render.ascii res.Viewcl.graph));
      (* Ablation 1 (DESIGN.md #1): typed debugger-side reads vs. the
         write-side shadow — the interpreter overhead the paper attributes
         to C-expression evaluation. *)
      t "ablation/maple-read-side-walk" (fun () -> ignore (Kmaple.read_entries ctx mt));
      t "ablation/maple-shadow-walk" (fun () ->
          ignore (Kmaple.entries (Kmm.tree_of kernel.Kstate.mm mm)));
      (* cexpr evaluation cost, the paper's claimed bottleneck *)
      t "ablation/cexpr-eval" (fun () ->
          ignore (Cexpr.eval_string tgt "cpu_rq(0)->cfs.tasks_timeline.rb_leftmost != NULL")) ]
  in
  run_bechamel tests

(* ------------------------------------------------------------------ *)
(* Degradation table: the whole Table 2 workload over a faulty link.
   Enabled by --fault-rate; the robustness/latency tradeoff in one
   table per rate (see ISSUE 2 / DESIGN.md §6). *)

let profile_of_name = function
  | "qemu" | "qemu_local" -> Target.qemu_local
  | "kgdb_rpi" -> Target.kgdb_rpi
  | "kgdb_rpi400" -> Target.kgdb_rpi400
  | p -> failwith (Printf.sprintf "unknown profile %S (qemu_local|kgdb_rpi|kgdb_rpi400)" p)

let degradation ~rates ~profile ~deadline_ms ~seed =
  section
    (Printf.sprintf "Degradation: Table 2 figures over a faulty %s link%s (seed %d)"
       profile.Target.pname
       (match deadline_ms with
       | Some d -> Printf.sprintf ", %.0f ms budget/plot" d
       | None -> "")
       seed);
  Printf.printf "%-6s %5s %6s %7s %7s %6s %7s %5s %6s %8s %8s %7s %10s\n" "rate" "plots"
    "boxes" "broken" "retries" "drops" "stalls" "disc" "trips" "refused" "dl-hits" "suspect"
    "sim-ms";
  List.iter
    (fun rate ->
      let kernel = Kstate.boot () in
      let w = Workload.create kernel in
      Workload.run w;
      let tr =
        Transport.create ~seed ~faults:(Transport.faults_of_rate rate) profile
      in
      Transport.set_deadline tr deadline_ms;
      let s = Visualinux.attach ~transport:tr kernel in
      let plots = ref 0 and failed = ref 0 and boxes = ref 0 and broken = ref 0 in
      let suspects = ref 0 in
      let fetch_ms = ref 0. and interp_ms = ref 0. and render_ms = ref 0. in
      List.iter
        (fun (sc : Scripts.script) ->
          (* per-phase attribution from the obs registry: fetch = target
             read time, interp = ViewCL run minus fetch, render = ascii *)
          let fetch0 = Obs.Profile.total_ms "target.read" in
          let run0 = Obs.Profile.total_ms "viewcl.run" in
          let render0 = Obs.Profile.total_ms "render.ascii" in
          (match Visualinux.plot_figure s sc with
          | _, res, stats ->
              incr plots;
              ignore (Render.ascii res.Viewcl.graph);
              boxes := !boxes + Vgraph.box_count res.Viewcl.graph;
              broken :=
                !broken
                + List.length
                    (List.filter (fun b -> Vgraph.broken b <> None)
                       (Vgraph.boxes res.Viewcl.graph));
              (* every degraded graph goes through the structural
                 sanitizer too, so sanity.checked is never vacuously 0
                 in the smoke metrics *)
              suspects :=
                !suspects
                + List.length (Sanity.check_graph kernel.Kstate.ctx res.Viewcl.graph);
              if Obs.enabled () then begin
                let fetch = Obs.Profile.total_ms "target.read" -. fetch0 in
                let interp =
                  Float.max 0. (Obs.Profile.total_ms "viewcl.run" -. run0 -. fetch)
                in
                let render = Obs.Profile.total_ms "render.ascii" -. render0 in
                fetch_ms := !fetch_ms +. fetch;
                interp_ms := !interp_ms +. interp;
                render_ms := !render_ms +. render;
                Obs.Metrics.observe "phase.fetch_ms" fetch;
                Obs.Metrics.observe "phase.interp_ms" interp;
                Obs.Metrics.observe "phase.render_ms" render;
                Obs.Metrics.observe "bench.plot_ms" stats.Visualinux.wall_ms
              end
          | exception _ -> incr failed);
          (* a dead link stays dead until resynced: reconnect between
             figures, as the interactive session's `recover` would *)
          if Transport.link tr = Transport.Down then Transport.reconnect tr)
        Scripts.table2;
      let sn = Transport.snapshot tr in
      Printf.printf "%-6.3f %5d %6d %7d %7d %6d %7d %5d %6d %8d %8d %7d %10.1f\n" rate !plots
        !boxes !broken sn.Transport.retries sn.Transport.drops sn.Transport.stalls
        sn.Transport.disconnects sn.Transport.breaker_trips sn.Transport.short_circuits
        sn.Transport.deadline_hits !suspects sn.Transport.sim_ms;
      Printf.printf "       %s\n" (Render.transport_line tr);
      if Obs.enabled () then
        Printf.printf
          "       phases (wall): fetch %.2f ms, interp %.2f ms, render %.2f ms\n"
          !fetch_ms !interp_ms !render_ms;
      (* resilience contract: every plot completes, whatever the link does *)
      assert (!failed = 0 && !plots = List.length Scripts.table2))
    rates;
  print_endline
    "\n(plots always complete: link trouble degrades to broken boxes / truncated\n\
    \ traversals, never an exception; refused = breaker short-circuits,\n\
    \ dl-hits = reads refused by the per-plot deadline budget)"

(* ------------------------------------------------------------------ *)
(* Chaos table: the Table 2 figures extracted while seeded mutators fire
   between target reads (ISSUE 4 / DESIGN.md §8).  Snapshot consistency
   degrades gracefully under concurrent mutation: torn sections are
   retried per box, residual tears become [TORN] boxes, and the
   structural sanitizer sweeps every extracted graph for structures the
   mutators left mid-surgery. *)

(* Canonical render for warm-vs-cold identity: box ids renumbered 1..n
   in preorder from the roots, so an in-place warm refresh (old ids) and
   a cold plot (fresh ids) of the same state print the same text.  The
   obs timing footer is wall-clock noise, not plot content — drop it. *)
let canonical g =
  let g' = Vgraph.renumber g in
  Vgraph.set_title g' "identity";
  Render.ascii g'
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (String.length l >= 5 && String.sub l 0 5 = "[obs:"))
  |> String.concat "\n"

let chaos ~rates ~seed =
  section (Printf.sprintf "Chaos: Table 2 figures under concurrent mutation (seed %d)" seed);
  Printf.printf "%-6s %5s %6s %6s %5s %7s %8s %6s %7s %8s\n" "rate" "plots" "boxes" "fired"
    "torn" "retried" "repaired" "[TORN]" "suspect" "wall-ms";
  List.iter
    (fun rate ->
      let kernel = Kstate.boot () in
      let w = Workload.create kernel in
      Workload.run w;
      let s = Visualinux.attach kernel in
      (* a cached pane plotted before the storm; re-validated after it *)
      let id_sc = Option.get (Scripts.find "3-4") in
      let id_pane, _, _ = Visualinux.plot_figure s id_sc in
      let c = Workload.Chaos.create ~seed w ~rate in
      Workload.Chaos.arm c s.Visualinux.target;
      let plots = ref 0 and failed = ref 0 and boxes = ref 0 in
      let torn = ref 0 and retried = ref 0 and repaired = ref 0 and torn_boxes = ref 0 in
      let suspects = ref 0 and wall = ref 0. in
      List.iter
        (fun (sc : Scripts.script) ->
          match Visualinux.plot_figure s sc with
          | _, res, stats ->
              incr plots;
              ignore (Render.ascii res.Viewcl.graph);
              boxes := !boxes + Vgraph.box_count res.Viewcl.graph;
              torn := !torn + res.Viewcl.torn;
              retried := !retried + res.Viewcl.retried;
              repaired := !repaired + res.Viewcl.repaired;
              torn_boxes := !torn_boxes + res.Viewcl.torn_boxes;
              suspects :=
                !suspects
                + List.length (Sanity.check_graph kernel.Kstate.ctx res.Viewcl.graph);
              wall := !wall +. stats.Visualinux.wall_ms;
              if Obs.enabled () then Obs.Metrics.observe "bench.plot_ms" stats.Visualinux.wall_ms
          | exception _ -> incr failed)
        Scripts.table2;
      Workload.Chaos.disarm s.Visualinux.target;
      Printf.printf "%-6.3f %5d %6d %6d %5d %7d %8d %6d %7d %8.1f\n" rate !plots !boxes
        (Workload.Chaos.fired c) !torn !retried !repaired !torn_boxes !suspects !wall;
      (* chaos contract: concurrent mutation degrades to [TORN] and
         [SUSPECT] boxes, never an exception escaping a plot *)
      assert (!failed = 0 && !plots = List.length Scripts.table2);
      (* cache contract: now that the mutators are quiet, a warm refresh
         of the pre-storm pane (adopting what survived, rebuilding what
         the storm's writes invalidated) must render bit-identically to
         a cold uncached plot of the same state *)
      let warm =
        match Visualinux.vrefresh s ~pane:id_pane.Panel.pid with
        | Some (res, _) -> canonical res.Viewcl.graph
        | None -> assert false
      in
      let cold_s = Visualinux.attach kernel in
      Target.set_read_cache cold_s.Visualinux.target false;
      let cold_res =
        Viewcl.run ~cfg:cold_s.Visualinux.cfg cold_s.Visualinux.target id_sc.Scripts.source
      in
      assert (warm = canonical cold_res.Viewcl.graph);
      Printf.printf "       cached-vs-cold identity after the storm: ok\n")
    rates;
  print_endline
    "\n(plots always complete: a racing writer tears the box's consistent\n\
    \ section, the box is re-extracted, and residual tears degrade to [TORN]\n\
    \ tags; suspect = structures the sanitizer found violating their laws)"

(* ------------------------------------------------------------------ *)
(* Repeat-plot table: the ISSUE 5 fast path under its target workload —
   plot a figure once cold, then refresh it over and over against an
   unchanged kernel.  The generation-validated caches should turn the
   warm refreshes into near-zero-fetch adoptions; an uncached control
   session re-extracting the same program measures what each refresh
   would have cost before ISSUE 5.  The assertions at the bottom are the
   perf-smoke CI gate. *)

let median l =
  match List.sort compare l with
  | [] -> 0.
  | sorted -> List.nth sorted (List.length sorted / 2)

let repeat_plot ~iters ~seed =
  section
    (Printf.sprintf
       "Repeat-plot: cold plot + %d warm refreshes per figure, kgdb_rpi400 link (seed %d)"
       iters seed);
  Printf.printf "%-12s %9s %9s %7s %7s %8s %7s\n" "Figure" "cold-ms" "warm-p50" "cold-f"
    "warm-f" "uncach-f" "hit%";
  let kernel = Kstate.boot () in
  let w = Workload.create kernel in
  Workload.run w;
  let tr = Transport.create ~seed Target.kgdb_rpi400 in
  let s = Visualinux.attach ~transport:tr kernel in
  (* the pre-ISSUE-5 control: same kernel, own link, caches off *)
  let tr0 = Transport.create ~seed Target.kgdb_rpi400 in
  let s0 = Visualinux.attach ~transport:tr0 kernel in
  Target.set_read_cache s0.Visualinux.target false;
  let fetches tr = (Transport.snapshot tr).Transport.reads_ok in
  let sim tr = (Transport.snapshot tr).Transport.sim_ms in
  let cold_all = ref [] and warm_all = ref [] in
  let warm_fetches = ref 0 and uncached_fetches = ref 0 in
  let hits = ref 0 and misses = ref 0 and inval = ref 0 in
  List.iter
    (fun (sc : Scripts.script) ->
      let f0 = fetches tr and s0ms = sim tr in
      let pane, _, stats = Visualinux.plot_figure s sc in
      (* cost = local wall + simulated wire latency, as in Table 4 *)
      let cold_ms = stats.Visualinux.wall_ms +. (sim tr -. s0ms) in
      let cold_f = fetches tr - f0 in
      cold_all := cold_ms :: !cold_all;
      if Obs.enabled () then Obs.Metrics.observe "bench.cold_plot_ms" cold_ms;
      let wf0 = fetches tr in
      let warm_ms = ref [] in
      let fig_hits = ref 0 and fig_misses = ref 0 in
      for _ = 1 to iters do
        let w0ms = sim tr in
        match Visualinux.vrefresh s ~pane:pane.Panel.pid with
        | None -> assert false
        | Some (_, st) ->
            let ms = st.Visualinux.wall_ms +. (sim tr -. w0ms) in
            warm_ms := ms :: !warm_ms;
            fig_hits := !fig_hits + st.Visualinux.cache_hits;
            fig_misses := !fig_misses + st.Visualinux.cache_misses;
            inval := !inval + st.Visualinux.cache_invalidated;
            if Obs.enabled () then Obs.Metrics.observe "bench.warm_refresh_ms" ms
      done;
      let warm_f = (fetches tr - wf0) / iters in
      warm_fetches := !warm_fetches + warm_f;
      hits := !hits + !fig_hits;
      misses := !misses + !fig_misses;
      warm_all := !warm_all @ !warm_ms;
      (* what one refresh costs without the caches: a fresh extraction
         of the same program through the uncached control session *)
      let u0 = fetches tr0 in
      ignore (Viewcl.run ~cfg:s0.Visualinux.cfg s0.Visualinux.target sc.Scripts.source);
      let un_f = fetches tr0 - u0 in
      uncached_fetches := !uncached_fetches + un_f;
      let denom = max 1 (!fig_hits + !fig_misses) in
      Printf.printf "%-12s %9.1f %9.1f %7d %7d %8d %6.0f%%\n" sc.Scripts.fig cold_ms
        (median !warm_ms) cold_f warm_f un_f
        (100. *. float_of_int !fig_hits /. float_of_int denom))
    Scripts.table2;
  let cold_p50 = median !cold_all and warm_p50 = median !warm_all in
  let hit_rate =
    float_of_int !hits /. float_of_int (max 1 (!hits + !misses + !inval))
  in
  Printf.printf
    "\ncold p50 %.1f ms, warm p50 %.1f ms (%.0fx); uncached %d fetches/refresh vs %d cached \
     (%.0fx); box hit-rate %.0f%%\n"
    cold_p50 warm_p50
    (cold_p50 /. Float.max 0.001 warm_p50)
    !uncached_fetches !warm_fetches
    (float_of_int !uncached_fetches /. float_of_int (max 1 !warm_fetches))
    (100. *. hit_rate);
  (* the perf-smoke gate (ISSUE 5 acceptance): the caches must actually
     bite — adopted boxes dominate, the wire goes at least 5x quieter,
     and a warm refresh is at least 3x faster than its cold plot *)
  assert (hit_rate >= 0.5);
  assert (!uncached_fetches >= 5 * max 1 !warm_fetches);
  assert (warm_p50 *. 3. <= cold_p50);
  print_endline
    "\n(warm-f = wire fetches per refresh with the caches on; uncach-f = the same\n\
    \ refresh through a cache-off control session; all three gates asserted)"

(* ------------------------------------------------------------------ *)
(* Multi-session server (ISSUE 6): N sessions multiplexed over one shared
   kgdb link.  Two fleets run on identically-seeded twin kernels with the
   same workload-step schedule and the same link seed — the storm fleet
   differs from the all-healthy baseline only in session 1's fault
   config — so any drift in the *other* sessions' op costs is, by
   construction, cross-session interference.  The assertions at the
   bottom are the session-smoke CI gate. *)

let percentile q l =
  match List.sort compare l with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
      List.nth sorted (min (n - 1) (max 0 rank))

let pane_state vis =
  List.map
    (fun id ->
      let p = Panel.pane vis.Visualinux.panel id in
      (id, List.map (fun b -> b.Vgraph.id) (Vgraph.boxes p.Panel.graph), canonical p.Panel.graph))
    (Panel.pane_ids vis.Visualinux.panel)

let sessions_bench ~n ~rate ~rounds ~seed =
  section
    (Printf.sprintf
       "Multi-session server: %d sessions on one shared kgdb_rpi400 link (fault-rate %.2f \
        on s1, %d rounds, seed %d)"
       n rate rounds seed);
  let shared_fig = Option.get (Scripts.find "3-4") in
  (* every session refreshes a figure the workload actually mutates each
     step (runqueues, slab, pagecache, ...), so each round is real wire
     work — a session stuck with an immutable figure would measure pure
     wall noise *)
  let own_figs =
    List.filter_map Scripts.find
      [ "3-6"; "7-1"; "11-1"; "16-2"; "proc2vfs"; "8-2"; "9-2"; "17-1" ]
  in
  let own_fig i = List.nth own_figs (i mod List.length own_figs) in
  let storm_round = 3 in
  let drop_everything =
    { Transport.stall_rate = 0.; drop_rate = 1.; disconnect_rate = 0. }
  in
  (* One fleet: n sessions on one shared link.  Round 0 is identical in
     both fleets (the sick session's faults only arm from round 1): every
     session cold-plots the shared figure — the followers riding the
     first plot's warmed read cache is the cross-session hit rate — then
     its own private figure.  Rounds 1.. mutate the kernel, then every
     session refreshes its own pane; the healthy sessions go first so the
     sick one can never prefetch for them, and a refused refresh degrades
     to serving the pane [STALE] from the cache. *)
  let run ~sick =
    let kernel = Kstate.boot () in
    let w = Workload.create kernel in
    Workload.run w;
    let srv = Session.create ~capacity:n kernel in
    Session.add_target srv ~transport:(Transport.create ~seed Target.kgdb_rpi400) "wire";
    let sids =
      List.init n (fun i ->
          match Session.open_session ~target:"wire" srv (Printf.sprintf "s%d" (i + 1)) with
          | Session.Admitted sid -> sid
          | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
    in
    (* admission beyond capacity: a typed refusal, never an exception *)
    (match Session.open_session srv "overflow" with
    | Session.Rejected { reason = Session.Capacity { limit } } -> assert (limit = n)
    | _ -> assert false);
    (* fresh SLO windows per fleet: the session counters are global and
       cumulative across the twin runs, and registration snapshots them,
       so each run's burn rates are computed from its own deltas only *)
    if Obs.enabled () then begin
      Obs.Slo.clear ();
      Session.register_slos srv
    end;
    let sick_sid = List.hd sids in
    let costs = Hashtbl.create 8 in
    let record sid ms =
      let r =
        match Hashtbl.find_opt costs sid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add costs sid r;
            r
      in
      r := ms :: !r
    in
    (* op cost = local wall + the simulated wire ms the op charged the
       session, as in Table 4 *)
    let timed sid f =
      let w0 = Session.wire_ms srv sid in
      let t0 = Unix.gettimeofday () in
      let out = f () in
      (out, ((Unix.gettimeofday () -. t0) *. 1000.) +. (Session.wire_ms srv sid -. w0))
    in
    let panes = Hashtbl.create 8 in
    let stale_serves = ref 0 and saw_quarantine = ref false in
    let cross_hits = ref 0 and cross_reads = ref 0 in
    let poll () =
      if Session.target_health srv "wire" <> `Healthy then saw_quarantine := true
    in
    List.iteri
      (fun i sid ->
        let h0 = Session.counter srv sid "cache.hits" in
        let m0 = Session.counter srv sid "cache.misses" in
        let shared_pane =
          match timed sid (fun () -> Session.vplot srv sid shared_fig.Scripts.source) with
          | Session.Admitted (p, _, _), ms ->
              record sid ms;
              p.Panel.pid
          | Session.Rejected { reason }, _ -> failwith (Session.reason_to_string reason)
        in
        if i > 0 then begin
          let dh = Session.counter srv sid "cache.hits" - h0 in
          let dm = Session.counter srv sid "cache.misses" - m0 in
          cross_hits := !cross_hits + dh;
          cross_reads := !cross_reads + dh + dm
        end;
        let own_pane =
          match timed sid (fun () -> Session.vplot srv sid (own_fig i).Scripts.source) with
          | Session.Admitted (p, _, _), ms ->
              record sid ms;
              p.Panel.pid
          | Session.Rejected { reason }, _ -> failwith (Session.reason_to_string reason)
        in
        Hashtbl.replace panes sid (shared_pane, own_pane))
      sids;
    (* the cross-hit measurement above needed the shared read cache; the
       rounds below run with it off so every refresh does real wire work
       — the storm has a wire to storm, and a session that missed a
       round pays exactly one re-extraction to catch up, same as any
       other round *)
    Target.set_read_cache
      (Option.get (Session.vis srv (List.hd sids))).Visualinux.target
      false;
    let healthy_first = List.tl sids @ [ sick_sid ] in
    for r = 1 to rounds do
      Workload.step w;
      List.iter
        (fun sid ->
          let _, own = Hashtbl.find panes sid in
          if sick && sid = sick_sid then begin
            (* the storm: at storm_round everything drops, forcing the
               breaker open; otherwise the configured fault rate *)
            Session.set_faults srv sid
              (if r = storm_round then drop_everything else Transport.faults_of_rate rate);
            ignore (Session.vrefresh srv sid ~pane:own)
          end
          else begin
            match timed sid (fun () -> Session.vrefresh srv sid ~pane:own) with
            | Session.Admitted _, ms -> record sid ms
            | Session.Rejected _, _ ->
                ignore (Session.render srv sid own);
                incr stale_serves
          end;
          poll ())
        healthy_first;
      (* one SLO evaluation epoch per round: the fast window is exactly
         one round of ops, the slow window the last eight *)
      Obs.Slo.tick ()
    done;
    let cross =
      float_of_int !cross_hits /. float_of_int (max 1 !cross_reads)
    in
    (kernel, srv, sids, costs, panes, !stale_serves, !saw_quarantine, cross)
  in
  let _, srv_a, sids_a, costs_a, _, stales_a, sawq_a, _ = run ~sick:false in
  let kernel, srv, sids, costs, panes, stales, sawq, cross = run ~sick:true in
  let sick_sid = List.hd sids in
  (* the storm is over: heal s1 and let the probation queue drain — the
     elected prober re-opens the link, then each admitted op re-admits
     one waiter (fair, no thundering herd) *)
  Session.set_faults srv sick_sid Transport.no_faults;
  let tries = ref 0 in
  while Session.target_health srv "wire" <> `Healthy && !tries < 8 * n do
    List.iter
      (fun sid ->
        let _, own = Hashtbl.find panes sid in
        ignore (Session.vrefresh srv sid ~pane:own))
      sids;
    incr tries
  done;
  assert (Session.target_health srv "wire" = `Healthy);
  (* fault isolation, the render half: once re-admitted, every healthy
     session's panes must render byte-identically to a cache-off solo
     extraction of the same programs against the same kernel state —
     zero residue (torn boxes, stale bytes) from s1's storm *)
  let solo = Visualinux.attach kernel in
  Target.set_read_cache solo.Visualinux.target false;
  let solo_txt (sc : Scripts.script) =
    canonical
      (Viewcl.run ~cfg:solo.Visualinux.cfg solo.Visualinux.target sc.Scripts.source)
        .Viewcl.graph
  in
  List.iteri
    (fun i sid ->
      (* the sick session is healed by now, so the identity holds for it
         too: its torn storm-era panes re-extract clean *)
      (match Session.refresh_stale srv sid with
      | Session.Admitted _ -> ()
      | Session.Rejected { reason } -> failwith (Session.reason_to_string reason));
      let check pane sc =
        match Session.vrefresh srv sid ~pane with
        | Session.Admitted (Some (res, _)) ->
            assert (canonical res.Viewcl.graph = solo_txt sc)
        | _ -> assert false
      in
      let shared_pane, own_pane = Hashtbl.find panes sid in
      check shared_pane shared_fig;
      check own_pane (own_fig i))
    sids;
  (* crash-safe fleet recovery: kill the server, replay every session's
     journal into a fresh one over the same kernel — pane and box ids
     come back *)
  let snapshot = Session.save_fleet srv in
  let recover_into () =
    let srv' = Session.create ~capacity:n kernel in
    Session.add_target srv' ~transport:(Transport.create ~seed Target.kgdb_rpi400) "wire";
    let back = Session.recover_fleet srv' snapshot in
    assert (List.length back = n);
    ( srv',
      List.map
        (function
          | Session.Admitted (sid', _) -> sid'
          | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
        back )
  in
  let srv2, sids2 = recover_into () in
  (* the live fleet's boxes carry ids from months of in-place adoption,
     so a replay can only promise the same panes and the same rendered
     bytes; the id claim is replay determinism — two independent
     recoveries of the snapshot must agree on every pane AND box id *)
  List.iter2
    (fun sid sid' ->
      let v = Option.get (Session.vis srv sid) in
      let v' = Option.get (Session.vis srv2 sid') in
      let strip st = List.map (fun (id, _, txt) -> (id, txt)) st in
      assert (strip (pane_state v) = strip (pane_state v')))
    sids sids2;
  let srv3, sids3 = recover_into () in
  List.iter2
    (fun sid' sid'' ->
      let v' = Option.get (Session.vis srv2 sid') in
      let v'' = Option.get (Session.vis srv3 sid'') in
      assert (pane_state v' = pane_state v''))
    sids2 sids3;
  (* per-session latency table; the pool for the isolation gate is the
     healthy sessions (everyone but s1) in both fleets *)
  let samples tbl sid = match Hashtbl.find_opt tbl sid with Some r -> !r | None -> [] in
  let pool tbl sids = List.concat_map (samples tbl) sids in
  let base_pool = pool costs_a (List.tl sids_a) in
  let storm_pool = pool costs (List.tl sids) in
  let base_p95 = percentile 0.95 base_pool in
  let storm_p95 = percentile 0.95 storm_pool in
  Printf.printf "%-5s %-8s %5s %8s %8s %6s %6s %7s %7s\n" "sess" "role" "ops" "p50-ms"
    "p95-ms" "rejec" "stale" "faults" "reads";
  List.iteri
    (fun i sid ->
      let l = samples costs sid in
      Printf.printf "%-5s %-8s %5d %8.1f %8.1f %6d %6d %7d %7d\n"
        (Printf.sprintf "s%d" (i + 1))
        (if sid = sick_sid then "sick" else "healthy")
        (List.length l) (percentile 0.5 l) (percentile 0.95 l)
        (Session.counter srv sid "rejections")
        (Session.counter srv sid "stale.renders")
        (Session.counter srv sid "faults")
        (Session.counter srv sid "reads"))
    sids;
  let rejections =
    List.fold_left (fun a sid -> a + Session.counter srv sid "rejections") 0 sids
  in
  Printf.printf
    "\nhealthy-pool p95: baseline %.1f ms, under storm %.1f ms (%.2fx); cross-session \
     cold-plot hit rate %.0f%%\n"
    base_p95 storm_p95
    (storm_p95 /. Float.max 0.001 base_p95)
    (100. *. cross);
  Printf.printf
    "storm fleet: %d typed rejections, %d [STALE] serves, quarantine %s; baseline: %d \
     rejections, %d stale serves\n"
    rejections stales
    (if sawq then "entered and drained" else "never entered")
    (List.fold_left (fun a sid -> a + Session.counter srv_a sid "rejections") 0 sids_a)
    stales_a;
  Printf.printf "fleet recovery: %d/%d sessions replayed, pane/box ids reproduced\n"
    (List.length sids2) n;
  if Obs.enabled () then begin
    Obs.Metrics.set_gauge "sessions.count" (float_of_int n);
    Obs.Metrics.set_gauge "sessions.base_p95_ms" base_p95;
    Obs.Metrics.set_gauge "sessions.storm_p95_ms" storm_p95;
    Obs.Metrics.set_gauge "sessions.p95_ratio" (storm_p95 /. Float.max 0.001 base_p95);
    Obs.Metrics.set_gauge "sessions.cross_hit_rate" cross;
    Obs.Metrics.set_gauge "sessions.fleet_recovered" (float_of_int (List.length sids2));
    (* the storm fleet's SLO burn, as of its last evaluation epoch: the
       sick session's clean_reads budget torches, the healthy ones stay
       quiet — the slo-smoke gate asserts exactly this split from the
       exported slo.* gauges *)
    print_newline ();
    print_string (Obs.Slo.report ());
    List.iter
      (fun sid ->
        match Obs.Metrics.top_exemplar (Printf.sprintf "session.%d.op_ms" sid) with
        | Some (tid, v) ->
            Printf.printf "exemplar: s%d slowest-bucket op %.1f ms <- trace %d%s\n" sid v
              tid
              (if sid = sick_sid then " (sick)" else "")
        | None -> ())
      sids
  end;
  (* the session-smoke gate (ISSUE 6 acceptance): the baseline fleet is
     storm-free; the storm actually tripped the breaker and was refused
     with typed rejections, not exceptions; the healthy sessions' p95
     stayed within 25% of the all-healthy baseline; and the followers
     really did ride the shared cache *)
  assert ((not sawq_a) && stales_a = 0);
  assert (sawq && rejections > 0 && stales > 0);
  assert (storm_p95 <= (1.25 *. base_p95) +. 0.5);
  assert (cross >= 0.3);
  print_endline
    "\n(isolation gate: one session storming at the given fault rate — plus one\n\
    \ forced breaker-Open round — left the other sessions' p95 within 25% of the\n\
    \ all-healthy twin fleet, their renders byte-identical to solo extractions,\n\
    \ and every refusal a typed Rejected; all gates asserted)"

(* ------------------------------------------------------------------ *)
(* Chaos campaigns (ISSUE 7): a scripted fault timeline from a committed
   .campaign file, run twice on identically-seeded twin fleets — live
   (wire events armed) and control (all-healthy wires; kernel-level
   events like bit-flip storms fire in both so the kernels stay twins).
   Per phase we record availability, op latency and [STALE]/[BROKEN]/
   [TORN] box counts; after the last `recover` we record time-to-
   recovery; the script's `expect` lines are asserted at the end — the
   campaign-smoke CI gate. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_sub text sub =
  let nt = String.length text and ns = String.length sub in
  let c = ref 0 in
  for i = 0 to nt - ns do
    if String.sub text i ns = sub then incr c
  done;
  !c

type phase_stats = {
  mutable att : int;  (* ops attempted *)
  mutable adm : int;  (* ops admitted *)
  mutable pms : float list;  (* admitted op costs *)
  mutable stale : int;  (* [STALE] boxes rendered *)
  mutable broken : int;  (* [BROKEN ...] boxes rendered *)
  mutable torn : int;  (* [TORN] boxes rendered *)
}

let campaign_bench ~file ~seed =
  let module C = Workload.Campaign in
  let c = C.parse (read_file file) in
  section
    (Printf.sprintf "Campaign %S: %d sessions on %s, %d ops, kgdb_rpi400 (seed %d)" c.C.cname
       c.C.csessions
       (String.concat "+" c.C.ctargets)
       c.C.cops seed);
  List.iter
    (fun (mark, ev) -> Printf.printf "  at %-4d %s\n" mark (C.event_to_string ev))
    c.C.events;
  let n = c.C.csessions in
  let home = List.hd c.C.ctargets in
  let own_figs =
    List.filter_map Scripts.find [ "3-6"; "7-1"; "11-1"; "16-2"; "proc2vfs"; "8-2" ]
  in
  let own_fig i = List.nth own_figs (i mod List.length own_figs) in
  let outage = { Transport.stall_rate = 0.; drop_rate = 0.; disconnect_rate = 1. } in
  (* campaign weather is gray failure: stalls and drops, never a
     spontaneous disconnect — `link_down` is the explicit outage event *)
  let gray r = { Transport.stall_rate = r; drop_rate = r; disconnect_rate = 0. } in
  (* One run of the scripted timeline.  [live] arms the wire events; the
     control run drives the same ops over all-healthy wires. *)
  let run ~live =
    let kernel = Kstate.boot () in
    let w = Workload.create kernel in
    Workload.run w;
    (* a ref: `crash_at` replaces the whole server with one recovered
       from the durable WAL image, and every closure below must see it *)
    let srv = ref (Session.create ~capacity:n kernel) in
    let trs =
      List.mapi
        (fun i t ->
          let tr = Transport.create ~seed:(seed + i) Target.kgdb_rpi400 in
          Session.add_target !srv ~transport:tr t;
          (t, tr))
        c.C.ctargets
    in
    let tr_of t =
      match List.assoc_opt t trs with
      | Some tr -> tr
      | None -> failwith (Printf.sprintf "campaign: unknown target %S" t)
    in
    let sids =
      List.init n (fun i ->
          match
            Session.open_session
              ~budget:(Session.budget ~retry_burst:8 ())
              ~weight:(C.weight_at c i) ~target:home !srv
              (Printf.sprintf "s%d" (i + 1))
          with
          | Session.Admitted sid -> sid
          | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
    in
    (* SLOs evaluate over the live run only (the control twin drives the
       same ops but its burn is definitionally zero); registering fresh
       here snapshots the cumulative counters so the deltas are this
       run's own *)
    if live && Obs.enabled () then begin
      Obs.Slo.clear ();
      Session.register_slos !srv
    end;
    let mem =
      Target.mem (Option.get (Session.vis !srv (List.hd sids))).Visualinux.target
    in
    (* setup (not part of the measured timeline): every session plots its
       own figure; the op loop then refreshes them with the read cache
       off so every admitted op is real wire work *)
    let panes =
      List.mapi
        (fun i sid ->
          match Session.vplot !srv sid (own_fig i).Scripts.source with
          | Session.Admitted (p, _, _) -> (sid, (p.Panel.pid, own_fig i))
          | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
        sids
    in
    Target.set_read_cache
      (Option.get (Session.vis !srv (List.hd sids))).Visualinux.target
      false;
    (* the live fleet journals into a durable WAL from here on: the
       attach snapshot captures the plotted panes, then every admitted
       op streams as a checksummed record — `crash_at` rebuilds the
       whole server from exactly these bytes *)
    if live then Session.attach_wal !srv (Durable.create ~seed:(seed + 7177) ());
    let crashes = ref 0 and recovered_s = ref 0 and salvaged_s = ref 0 in
    let phases_rev = ref [] in
    let cur = ref { att = 0; adm = 0; pms = []; stale = 0; broken = 0; torn = 0 } in
    phases_rev := [ ("start", !cur) ];
    let unhealthy = ref 0 and stale_serves = ref 0 and rejections = ref 0 in
    let recover_mark = ref None and ttr = ref None in
    let hedge_checked = ref false in
    let solo =
      lazy
        (let s = Visualinux.attach kernel in
         Target.set_read_cache s.Visualinux.target false;
         s)
    in
    let solo_txt (sc : Scripts.script) =
      let s = Lazy.force solo in
      canonical (Viewcl.run ~cfg:s.Visualinux.cfg s.Visualinux.target sc.Scripts.source).Viewcl.graph
    in
    let fire op ev =
      if live then Printf.printf "  [op %d] %s\n%!" op (C.event_to_string ev);
      match ev with
      | C.Phase p ->
          cur := { att = 0; adm = 0; pms = []; stale = 0; broken = 0; torn = 0 };
          phases_rev := (p, !cur) :: !phases_rev
      | C.Link_down t ->
          if live then begin
            Transport.set_base_faults (tr_of t) outage;
            Transport.disconnect (tr_of t)
          end
      | C.Link_up t ->
          if live then begin
            Transport.set_base_faults (tr_of t) Transport.no_faults;
            Transport.reconnect (tr_of t)
          end
      | C.Fault_rate (t, r) -> if live then Transport.set_base_faults (tr_of t) (gray r)
      | C.Bit_flip_storm _ ->
          (* kernel-level: fires in both runs, so the twins stay twins *)
          Kmem.inject_read_failures mem ~seed 0.25
      | C.Recover t ->
          Kmem.clear_injection mem;
          if live then begin
            let tr = tr_of t in
            Transport.set_base_faults tr Transport.no_faults;
            if Transport.link tr = Transport.Down || Transport.breaker tr <> Transport.Closed
            then Transport.reconnect tr;
            recover_mark := Some op;
            ttr := None
          end
      | C.Corrupt_journal ->
          (* flip one payload bit inside a journaled op record; the next
             crash recovery must salvage around it, not raise *)
          if live then ignore (Session.corrupt_wal !srv)
      | C.Crash ->
          if live then begin
            let image = Durable.contents (Option.get (Session.wal_of !srv)) in
            let srv' = Session.create ~capacity:n kernel in
            (* the same wires, warts and all: a crash of the session host
               does not heal a down link or a tripped breaker *)
            List.iter (fun (t, tr) -> Session.add_target srv' ~transport:tr t) trs;
            let r = Session.recover_durable srv' image in
            print_string (Session.recovery_to_string r);
            incr crashes;
            List.iter
              (fun (s : Session.srecovery) ->
                match s.Session.rsalvage with
                | Session.Replayed -> incr recovered_s
                | Session.Salvaged _ | Session.Quarantined_stale -> incr salvaged_s)
              r.Session.rsessions;
            Session.attach_wal srv'
              (Durable.create ~seed:(seed + 7177 + !crashes) ());
            srv := srv';
            Target.set_read_cache
              (Option.get (Session.vis srv' (List.hd sids))).Visualinux.target
              false
          end
    in
    let timed sid f =
      let w0 = Session.wire_ms !srv sid in
      let t0 = Unix.gettimeofday () in
      let out = f () in
      (out, ((Unix.gettimeofday () -. t0) *. 1000.) +. (Session.wire_ms !srv sid -. w0))
    in
    let drive op =
      let i = (op - 1) mod n in
      (* the workload's own structure surgery cannot run over a memory
         whose reads are failing — a real kernel would have oopsed too;
         mutation resumes at `recover` (symmetric in both runs, so the
         twin kernels stay aligned) *)
      if i = 0 && not (Kmem.injection_active mem) then Workload.step w;
      let sid = List.nth sids i in
      let pane, sc = List.assoc sid panes in
      let h0 = Session.counter !srv sid "hedged.ops" in
      (* refreshes are not journaled; a periodic no-op refine keeps
         checkpointed records flowing into the WAL so `crash_at` and
         `corrupt_journal` always have a mid-stream op to land on *)
      if op mod 5 = 0 then
        ignore
          (Session.vctrl !srv sid
             (Visualinux.Apply
                { pane; viewql = "a = SELECT task_struct FROM * WHERE pid > 99999" }));
      !cur.att <- !cur.att + 1;
      (match timed sid (fun () -> Session.vrefresh !srv sid ~pane) with
      | Session.Admitted r, ms ->
          !cur.adm <- !cur.adm + 1;
          !cur.pms <- ms :: !cur.pms;
          (* hedged-read identity, checked once at the first hedged op:
             the bytes served from the replica must equal a cache-off
             solo extraction of the same program — and the sick home
             wire's breaker must never have tripped (the reroute beat
             it), which is the ISSUE 7 acceptance gate *)
          if
            live && (not !hedge_checked)
            && Session.counter !srv sid "hedged.ops" > h0
            && not (Kmem.injection_active mem)
          then begin
            hedge_checked := true;
            assert ((Transport.snapshot (tr_of home)).Transport.breaker_trips = 0);
            match r with
            | Some (res, _) -> assert (canonical res.Viewcl.graph = solo_txt sc)
            | None -> assert false
          end
      | Session.Rejected _, _ ->
          incr rejections;
          ignore (Session.render !srv sid pane);
          incr stale_serves);
      (match Session.render !srv sid pane with
      | Some txt ->
          !cur.stale <- !cur.stale + count_sub txt "[STALE]";
          !cur.broken <- !cur.broken + count_sub txt "[BROKEN";
          !cur.torn <- !cur.torn + count_sub txt "[TORN]"
      | None -> ());
      if Session.target_health !srv home <> `Healthy then incr unhealthy;
      match !recover_mark with
      | Some r0 when !ttr = None && Session.target_health !srv home = `Healthy ->
          ttr := Some (op - r0 + 1)
      | _ -> ()
    in
    for op = 1 to c.C.cops do
      List.iter (fire op) (C.events_at c op);
      drive op;
      (* one SLO epoch per full rotation of the fleet *)
      if live && op mod n = 0 then Obs.Slo.tick ()
    done;
    (* recovery non-vacuity: if the last `recover` has not yet drained
       back to Healthy, keep driving (bounded) — TTR must exist *)
    (match !recover_mark with
    | Some _ when !ttr = None ->
        let extra = ref 0 in
        while Session.target_health !srv home <> `Healthy && !extra < 8 * n do
          incr extra;
          drive (c.C.cops + !extra)
        done
    | _ -> ());
    let hedged =
      List.fold_left (fun a sid -> a + Session.counter !srv sid "hedged.ops") 0 sids
    in
    let canaries =
      List.fold_left (fun a sid -> a + Session.counter !srv sid "canaries") 0 sids
    in
    ( List.rev !phases_rev, !unhealthy, !ttr, hedged, canaries, !stale_serves, !rejections,
      Session.target_health !srv home,
      (!crashes, !recovered_s, !salvaged_s) )
  in
  let base_phases, _, _, base_hedged, _, _, _, _, _ = run ~live:false in
  let ( phases, unhealthy, ttr, hedged, canaries, stale_serves, rejections, end_health,
        (crashes, recovered_s, salvaged_s) ) =
    run ~live:true
  in
  assert (base_hedged = 0);
  let pool ph = List.concat_map (fun (_, st) -> st.pms) ph in
  let live_p95 = percentile 0.95 (pool phases) in
  let base_p95 = percentile 0.95 (pool base_phases) in
  let ratio = live_p95 /. Float.max 0.001 base_p95 in
  Printf.printf "\n%-12s %5s %5s %6s %8s %8s %6s %7s %5s\n" "phase" "ops" "adm" "avail"
    "p50-ms" "p95-ms" "stale" "broken" "torn";
  let avail st = float_of_int st.adm /. float_of_int (max 1 st.att) in
  List.iter
    (fun (p, st) ->
      if st.att > 0 then
        Printf.printf "%-12s %5d %5d %5.0f%% %8.1f %8.1f %6d %7d %5d\n" p st.att st.adm
          (100. *. avail st) (percentile 0.5 st.pms) (percentile 0.95 st.pms) st.stale
          st.broken st.torn)
    phases;
  Printf.printf
    "\nlive p95 %.1f ms vs all-healthy twin %.1f ms (%.2fx); %d unhealthy ops, %d hedged, \
     %d canaries\n"
    live_p95 base_p95 ratio unhealthy hedged canaries;
  Printf.printf "%d rejections -> %d [STALE] serves; time-to-recovery %s; end state %s\n"
    rejections stale_serves
    (match ttr with Some t -> Printf.sprintf "%d ops" t | None -> "n/a (no recover event)")
    (match end_health with
    | `Healthy -> "healthy"
    | `Degraded -> "degraded"
    | `Quarantine _ -> "quarantine"
    | `Probation _ -> "probation");
  if crashes > 0 then
    Printf.printf
      "%d crash recover%s from the durable WAL: %d sessions replayed clean, %d salvaged\n"
      crashes
      (if crashes = 1 then "y" else "ies")
      recovered_s salvaged_s;
  if Obs.enabled () then begin
    Obs.Metrics.set_gauge "campaign.p95_ratio" ratio;
    Obs.Metrics.set_gauge "campaign.live_p95_ms" live_p95;
    Obs.Metrics.set_gauge "campaign.base_p95_ms" base_p95;
    Obs.Metrics.set_gauge "campaign.unhealthy_ops" (float_of_int unhealthy);
    Obs.Metrics.set_gauge "campaign.hedged_ops" (float_of_int hedged);
    Obs.Metrics.set_gauge "campaign.stale_serves" (float_of_int stale_serves);
    Obs.Metrics.set_gauge "campaign.crash_recoveries" (float_of_int crashes);
    Obs.Metrics.set_gauge "campaign.recovered_sessions" (float_of_int recovered_s);
    Obs.Metrics.set_gauge "campaign.salvaged_sessions" (float_of_int salvaged_s);
    Option.iter
      (fun t -> Obs.Metrics.set_gauge "campaign.ttr_ops" (float_of_int t))
      ttr;
    List.iter
      (fun (p, st) ->
        if st.att > 0 then
          Obs.Metrics.set_gauge (Printf.sprintf "campaign.availability.%s" p) (avail st))
      phases;
    print_newline ();
    print_string (Obs.Slo.report ());
    (match Obs.Metrics.top_exemplar "session.1.op_ms" with
    | Some (tid, v) ->
        Printf.printf "exemplar: s1 slowest-bucket op %.1f ms <- trace %d\n" v tid
    | None -> ())
  end;
  (* the expect gates, straight from the script *)
  List.iter
    (fun (key, v) ->
      let ok, got =
        match key with
        | "p95_ratio" -> (live_p95 <= (v *. base_p95) +. 0.5, ratio)
        | "ttr_ops" -> (
            match ttr with
            | Some t -> (t <= int_of_float v, float_of_int t)
            | None -> (false, nan))
        | "unhealthy_ops" -> (unhealthy >= int_of_float v, float_of_int unhealthy)
        | "hedged_ops" -> (hedged >= int_of_float v, float_of_int hedged)
        | "crash_recoveries" -> (crashes >= int_of_float v, float_of_int crashes)
        | "recovered_sessions" ->
            (recovered_s >= int_of_float v, float_of_int recovered_s)
        | "salvaged_sessions" ->
            (salvaged_s >= int_of_float v, float_of_int salvaged_s)
        | _ -> (
            match String.index_opt key '.' with
            | Some i when String.sub key 0 i = "availability" -> (
                let p = String.sub key (i + 1) (String.length key - i - 1) in
                match List.assoc_opt p phases with
                | Some st -> (avail st >= v, avail st)
                | None -> (false, nan))
            | _ -> failwith (Printf.sprintf "campaign: unknown expect key %S" key))
      in
      Printf.printf "expect %-24s %-8g got %-8.3f %s\n" key v got (if ok then "ok" else "FAIL");
      assert ok)
    c.C.expects;
  (* the campaign must always end healed when it scripted a recovery *)
  if c.C.expects <> [] && List.mem_assoc "ttr_ops" c.C.expects then
    assert (end_health = `Healthy)

(* ------------------------------------------------------------------ *)

(* The crash-point torture harness (--crash <campaign>): record a run of
   checkpointing panel ops into the durable WAL, then for {e every}
   prefix length k of the recorded journal, crash there and recover —
   three ways per point:

     clean    the exact k-record prefix: every session must replay
              byte-identically (pane ids, box ids, rendered text) to the
              reference state captured live after record k
     torn     the prefix plus a truncated record k: the partial write
              must be detected and dropped, recovery equal to clean-k
     bit-flip one seeded bit inside an earlier record j: the owner of j
              comes back typed (salvaged/quarantined) or provably
              shorter, every other session byte-identical — corruption
              never leaks across the session boundary

   Zero exceptions anywhere, by construction of the assert soup. *)
let crash_bench ~file ~seed =
  let module C = Workload.Campaign in
  let c = C.parse (read_file file) in
  let n = c.C.csessions in
  let nops = min c.C.cops 48 in
  section
    (Printf.sprintf "Crash torture of campaign %S: %d sessions, %d recorded ops (seed %d)"
       c.C.cname n nops seed);
  if nops < c.C.cops then
    Printf.printf
      "  (capped at %d of the campaign's %d ops: every crash point recovers 3 ways)\n" nops
      c.C.cops;
  let kernel = Kstate.boot () in
  let w = Workload.create kernel in
  Workload.run w;
  (* the recorded fleet runs on the local in-process target: the torture
     measures journal robustness, not wire weather, and a static kernel
     makes "byte-identical" a meaningful oracle *)
  let srv = Session.create ~capacity:n kernel in
  let sids =
    List.init n (fun i ->
        match Session.open_session srv (Printf.sprintf "s%d" (i + 1)) with
        | Session.Admitted sid -> sid
        | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
  in
  let own_figs =
    List.filter_map Scripts.find [ "3-6"; "7-1"; "11-1"; "16-2"; "proc2vfs"; "8-2" ]
  in
  let own_fig i = List.nth own_figs (i mod List.length own_figs) in
  let panes =
    List.mapi
      (fun i sid ->
        match Session.vplot srv sid (own_fig i).Scripts.source with
        | Session.Admitted (p, _, _) -> (sid, p.Panel.pid)
        | Session.Rejected { reason } -> failwith (Session.reason_to_string reason))
      sids
  in
  let wal = Durable.create ~seed () in
  (* pure tail after the attach snapshot: mid-run compaction would fold
     records away and crash points must map 1:1 onto driver actions *)
  Session.set_wal_snapshot_limit srv 1_000_000;
  Session.attach_wal srv wal;
  (* ops already inside the attach snapshot (the vplot Jopen): recovery
     replays them too, so expected-op arithmetic needs the base *)
  let base_ops =
    List.map
      (fun sid ->
        ( sid,
          List.length
            (Panel.journal (Option.get (Session.vis srv sid)).Visualinux.panel) ))
      sids
  in
  let viewqls =
    [| "a = SELECT task_struct FROM * WHERE pid > 99999\nUPDATE a WITH collapsed: true";
       "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true";
       "a = SELECT task_struct FROM * WHERE pid > 1\nUPDATE a WITH collapsed: false" |]
  in
  let extra = Array.make (n + 1) [] in
  let owners_rev = ref [ 0 ] (* record 0 = the attach snapshot, unowned *) in
  let capture () =
    List.map (fun sid -> (sid, pane_state (Option.get (Session.vis srv sid)))) sids
  in
  let refs = Array.make (nops + 2) [] in
  refs.(1) <- capture ();
  for i = 1 to nops do
    let idx = (i - 1) mod n in
    let sid = List.nth sids idx in
    let base = List.assoc sid panes in
    let ctrl =
      if i mod 7 = 0 then
        Visualinux.Split
          { pane = base;
            dir = (if i mod 14 = 0 then `Vertical else `Horizontal);
            program = (own_fig (idx + i)).Scripts.source }
      else
        match extra.(idx) with
        | p :: _ when i mod 7 = 3 -> Visualinux.Close { pane = p }
        | _ -> Visualinux.Apply { pane = base; viewql = viewqls.(i mod 3) }
    in
    (match Session.vctrl srv sid ctrl with
    | Session.Admitted (Visualinux.Opened p) -> extra.(idx) <- p :: extra.(idx)
    | Session.Admitted _ -> (
        match ctrl with
        | Visualinux.Close _ -> extra.(idx) <- List.tl extra.(idx)
        | _ -> ())
    | Session.Rejected { reason } -> failwith (Session.reason_to_string reason));
    owners_rev := sid :: !owners_rev;
    if i mod 4 = 0 then Durable.flush wal;
    refs.(i + 1) <- capture ()
  done;
  let records = Array.of_list (Durable.record_bytes wal) in
  let owners = Array.of_list (List.rev !owners_rev) in
  let r = Array.length records in
  (* one driver action = exactly one checksummed record, or the crash
     points below would not be the crash points we think they are *)
  assert (r = nops + 1);
  let prefix k = String.concat "" (Array.to_list (Array.sub records 0 k)) in
  let off_of j =
    let o = ref 0 in
    for i = 0 to j - 1 do
      o := !o + String.length records.(i)
    done;
    !o
  in
  let rnd = ref (seed lor 1) in
  let rand m =
    rnd := ((!rnd * 0x5DEECE66D) + 0xB) land max_int;
    (!rnd lsr 17) mod m
  in
  let recover image =
    let t0 = Unix.gettimeofday () in
    let srv' = Session.create ~capacity:n kernel in
    let rcv = Session.recover_durable srv' image in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    if Obs.enabled () then Obs.Metrics.observe "crash.recover_ms" ms;
    (srv', rcv, ms)
  in
  let state_of srv' sid = pane_state (Option.get (Session.vis srv' sid)) in
  let is_replayed (s : Session.srecovery) = s.Session.rsalvage = Session.Replayed in
  let identical = ref 0 and torn_ok = ref 0 and salvages = ref 0 and shorter = ref 0 in
  Printf.printf "\n%4s %6s %6s %5s %5s  %-28s %8s\n" "k" "bytes" "clean" "torn" "flip@"
    "flip outcome (owner)" "ms";
  for k = 1 to r do
    (* -- clean prefix: bit-identical or bust ------------------------ *)
    let srv', rcv, ms = recover (prefix k) in
    assert (rcv.Session.rreport.Durable.torn_bytes = 0);
    assert (rcv.Session.rreport.Durable.records_skipped = 0);
    assert (List.for_all is_replayed rcv.Session.rsessions);
    assert (List.for_all (fun sid -> state_of srv' sid = List.assoc sid refs.(k)) sids);
    incr identical;
    (* -- torn tail: a partial record k is dropped, not tripped over - *)
    let torn =
      if k < r then begin
        let cut = 1 + rand (String.length records.(k) - 1) in
        let srv', rcv, _ = recover (prefix k ^ String.sub records.(k) 0 cut) in
        assert (rcv.Session.rreport.Durable.torn_bytes > 0);
        assert (List.for_all is_replayed rcv.Session.rsessions);
        assert (
          List.for_all (fun sid -> state_of srv' sid = List.assoc sid refs.(k)) sids);
        incr torn_ok;
        "ok"
      end
      else "-"
    in
    (* -- bit-flip mid-journal: typed salvage, neighbours untouched -- *)
    let flip_at, outcome =
      if k < 2 then ("-", "-")
      else begin
        let j = 1 + rand (k - 1) in
        let plen = String.length records.(j) - 19 in
        let bit = ((off_of j + 15) * 8) + rand (plen * 8) in
        let srv', rcv, _ = recover (Durable.flip_bit (prefix k) bit) in
        let owner = owners.(j) in
        let ref_ops sid =
          let c = ref 0 in
          for i = 1 to k - 1 do
            if owners.(i) = sid then incr c
          done;
          !c
        in
        let out = ref "-" in
        List.iter
          (fun (s : Session.srecovery) ->
            if s.Session.rsid <> owner then begin
              (* isolation: everyone else replays bit-identically *)
              assert (is_replayed s);
              assert (state_of srv' s.Session.rsid = List.assoc s.Session.rsid refs.(k))
            end
            else
              match s.Session.rsalvage with
              | Session.Replayed ->
                  (* j was the owner's last journaled op: loss at the
                     very tail is indistinguishable from a torn tail,
                     but it must still be a strict prefix of the truth *)
                  assert (s.Session.rops = List.assoc owner base_ops + ref_ops owner - 1);
                  incr shorter;
                  out := Printf.sprintf "tail-lossy s%d" owner
              | Session.Salvaged { dropped } ->
                  assert (dropped >= 1);
                  incr salvages;
                  out := Printf.sprintf "salvaged s%d (-%d ops)" owner dropped
              | Session.Quarantined_stale ->
                  incr salvages;
                  out := Printf.sprintf "quarantined s%d" owner)
          rcv.Session.rsessions;
        (string_of_int j, !out)
      end
    in
    Printf.printf "%4d %6d %6s %5s %5s  %-28s %8.2f\n" k
      (String.length (prefix k))
      "ident" torn flip_at outcome ms
  done;
  (* -- unsalvageable journal: flip the snapshot itself -------------- *)
  let bit = (15 * 8) + rand ((String.length records.(0) - 19) * 8) in
  let srv', rcv, _ = recover (Durable.flip_bit (prefix r) bit) in
  assert (rcv.Session.rreport.Durable.records_skipped >= 1);
  List.iter
    (fun (s : Session.srecovery) ->
      (* no snapshot left to anchor anyone: every session comes back as
         a typed quarantined ghost, never a crash *)
      assert (s.Session.rsalvage = Session.Quarantined_stale))
    rcv.Session.rsessions;
  ignore srv';
  Printf.printf
    "\n%d crash points x {clean, torn, bit-flip}: %d bit-identical, %d torn-tail clean, \
     %d typed salvages, %d tail-lossy; snapshot-corruption -> %d quarantined ghosts\n"
    r !identical !torn_ok !salvages !shorter
    (List.length rcv.Session.rsessions);
  if Obs.enabled () then begin
    Obs.Metrics.set_gauge "crash.points" (float_of_int r);
    Obs.Metrics.set_gauge "crash.identical" (float_of_int !identical);
    Obs.Metrics.set_gauge "crash.torn_ok" (float_of_int !torn_ok);
    Obs.Metrics.set_gauge "crash.salvaged" (float_of_int (!salvages + !shorter))
  end;
  (* the whole point: every clean prefix recovered bit-identically *)
  assert (!identical = r && !torn_ok = r - 1)

(* ------------------------------------------------------------------ *)
(* Parallel extraction (ISSUE 10): the Table 2 figures with wide
   top-level forEach loops sharded over a work-stealing domain pool.
   Identity is the contract: --domains N must produce byte-identical
   canonical renders, an identical fault journal and identical merged
   read counters to --domains 1 (the same lane structure executed
   serially on the caller) — plain, under a split chaos storm, and
   under Kmem fault injection alike.

   The gated speedup is the deterministic LPT schedule model over the
   per-lane busy times measured on the 1-pool baseline
   (Dpool.model_speedup): it states how much of the plot wall-clock
   the sharded lanes cover and how evenly they pack onto N domains,
   and is reproducible on any host.  Wall-clock speedup is recorded
   alongside but only meaningful when the machine actually has N
   cores — this container has one. *)

type par_run = {
  prenders : string list;  (** canonical render per figure, in order *)
  pjournal : string list;  (** merged fault journal, formatted *)
  preads : int;  (** merged Target read counter *)
  pbytes : int;
  pfired : int;  (** chaos mutations fired (serial + per-lane) *)
  pwall_ms : float;  (** total plot wall across the figure set *)
  pbusy : float list;  (** per-lane busy times (1-pool: serial lane costs) *)
  ptasks : int;  (** lane tasks executed by the pool *)
  psteals : int;  (** tasks obtained by work stealing *)
}

let par_run ~pool_size ~seed ~chaos_rate ~inject () =
  let kernel = Kstate.boot () in
  let w = Workload.create kernel in
  (* a wide workload, so the container loops clear the shard fan-out *)
  Workload.run ~iters:40 w;
  (* plot-ms is priced as in Table 4: local wall plus simulated wire
     latency on the kgdb link.  Each lane runs over its own transport
     fork, and reports that fork's wire time into its pool timing
     (Dpool.charge), so serial and per-lane costs are in the same
     unit. *)
  let tr = Transport.create ~seed Target.kgdb_rpi400 in
  let s = Visualinux.attach ~transport:tr kernel in
  let tgt = s.Visualinux.target in
  let pool = Viewcl.Dpool.create pool_size in
  let c =
    Option.map
      (fun rate ->
        let c = Workload.Chaos.create ~seed w ~rate in
        Workload.Chaos.arm_split c tgt;
        c)
      chaos_rate
  in
  if inject then Kmem.inject_read_failures kernel.Kstate.ctx.Kcontext.mem ~seed 0.02;
  let renders = ref [] and wall = ref 0. in
  List.iter
    (fun (sc : Scripts.script) ->
      let t0 = Unix.gettimeofday () in
      let sim0 = (Transport.snapshot tr).Transport.sim_ms in
      (* an injected read can poison a pointer a C expression then
         chokes on; the raise is deterministic, so it is part of the
         identity contract: both runs must fail the same figure with
         the same message *)
      (match Viewcl.run ~cfg:s.Visualinux.cfg ~pool tgt sc.Scripts.source with
      | res -> renders := canonical res.Viewcl.graph :: !renders
      | exception Viewcl.Error e -> renders := ("ERROR: " ^ e) :: !renders);
      (* lane wire time is absorbed into the base transport at merge,
         so the snapshot delta prices the whole figure *)
      let fms =
        ((Unix.gettimeofday () -. t0) *. 1000.)
        +. ((Transport.snapshot tr).Transport.sim_ms -. sim0)
      in
      wall := !wall +. fms;
      if Sys.getenv_opt "PAR_DEBUG" <> None then begin
        let fb = List.fold_left ( +. ) 0. (Viewcl.Dpool.timings pool) in
        let cs = Target.cache_stats tgt in
        let sn = Transport.snapshot tr in
        Printf.printf
          "  fig %-10s plot-ms %8.2f busy-cum %8.2f tasks-cum %3d wire-cum %6d \
           hit-cum %6d miss-cum %5d coal-cum %5d\n"
          sc.Scripts.fig fms fb (Viewcl.Dpool.executed pool) sn.Transport.reads_ok
          cs.Target.hits cs.Target.misses cs.Target.coalesced
      end)
    Scripts.table2;
  if c <> None then Workload.Chaos.disarm tgt;
  if inject then Kmem.clear_injection kernel.Kstate.ctx.Kcontext.mem;
  let st = Target.stats tgt in
  let r =
    { prenders = List.rev !renders;
      pjournal = List.map Target.fault_to_string (Target.faults tgt);
      preads = st.Target.reads; pbytes = st.Target.bytes;
      pfired =
        (match c with
        | Some c -> Workload.Chaos.fired c + Workload.Chaos.split_fired c
        | None -> 0);
      pwall_ms = !wall; pbusy = Viewcl.Dpool.timings pool;
      ptasks = Viewcl.Dpool.executed pool; psteals = Viewcl.Dpool.steals pool }
  in
  Viewcl.Dpool.shutdown pool;
  r

let par_bench ~domains ~seed =
  section
    (Printf.sprintf
       "Parallel extraction: %d-domain pool vs the 1-pool identity baseline (seed %d)"
       domains seed);
  Printf.printf "%-12s %5s %8s %8s %6s %6s %7s | %8s %5s%% %8s %7s\n" "scenario" "figs"
    "journal" "reads" "fired" "lanes" "steals" "wall-1" "lane" (Printf.sprintf "wall-%d" domains)
    "model-x";
  let model = ref 1. and wall1 = ref 0. and walln = ref 0. in
  List.iter
    (fun (name, chaos_rate, inject) ->
      let r1 = par_run ~pool_size:1 ~seed ~chaos_rate ~inject () in
      let rn = par_run ~pool_size:domains ~seed ~chaos_rate ~inject () in
      (* the identity contract, per scenario *)
      List.iteri
        (fun i (a, b) ->
          if a <> b then begin
            Printf.printf "DIFF fig %d (%s):\n--- 1-pool ---\n%s\n--- %d-pool ---\n%s\n" i
              name (String.sub a 0 (min 600 (String.length a))) domains
              (String.sub b 0 (min 600 (String.length b)))
          end)
        (List.combine r1.prenders rn.prenders);
      assert (r1.prenders = rn.prenders);
      assert (r1.pjournal = rn.pjournal);
      assert (r1.preads = rn.preads && r1.pbytes = rn.pbytes);
      assert (r1.pfired = rn.pfired);
      let m = Viewcl.Dpool.model_speedup ~domains ~serial_ms:r1.pwall_ms r1.pbusy in
      let busy = List.fold_left ( +. ) 0. r1.pbusy in
      Printf.printf "%-12s %5d %8d %8d %6d %6d %7d | %8.1f %5.0f%% %8.1f %7.2f\n" name
        (List.length r1.prenders) (List.length r1.pjournal) r1.preads r1.pfired rn.ptasks
        rn.psteals r1.pwall_ms
        (100. *. busy /. Float.max 0.001 r1.pwall_ms)
        rn.pwall_ms m;
      if name = "plain" then begin
        model := m;
        wall1 := r1.pwall_ms;
        walln := rn.pwall_ms;
        (* the classic unsharded path must render identically too: pure
           reads, so the sequential interpreter and the lane merge are
           two routes to the same graph *)
        let kernel = Kstate.boot () in
        let w = Workload.create kernel in
        Workload.run ~iters:40 w;
        let s = Visualinux.attach kernel in
        let seq =
          List.map
            (fun (sc : Scripts.script) ->
              canonical
                (Viewcl.run ~cfg:s.Visualinux.cfg s.Visualinux.target sc.Scripts.source)
                  .Viewcl.graph)
            Scripts.table2
        in
        assert (seq = r1.prenders)
      end)
    [ ("plain", None, false); ("chaos-storm", Some 0.3, false); ("inject", None, true) ];
  let wall_speedup = !wall1 /. Float.max 0.001 !walln in
  Printf.printf
    "\nmodel speedup at %d domains: x%.2f   (wall x%.2f on this host; the model packs\n\
     the measured lane busy times onto %d domains with LPT and applies Amdahl to the\n\
     serial remainder — the portable number a 1-core CI box can still stand behind)\n"
    domains !model wall_speedup domains;
  Printf.printf "seq = 1-pool = %d-pool identity: renders, fault journals, counters ok\n"
    domains;
  if Obs.enabled () then begin
    Obs.Metrics.set_gauge "par.domains" (float_of_int domains);
    Obs.Metrics.set_gauge "par.speedup_4d" !model;
    Obs.Metrics.set_gauge "par.wall_speedup" wall_speedup;
    Obs.Metrics.set_gauge "par.serial_ms" !wall1;
    Obs.Metrics.set_gauge "par.par_ms" !walln
  end;
  (* the par-smoke gate: at 4 domains the schedule model must clear 2x
     (the ISSUE 10 floor; the recorded target is 3x, see EXPERIMENTS.md) *)
  if domains >= 4 then assert (!model >= 2.0)

(* ------------------------------------------------------------------ *)

let bench_span name f = Obs.with_span ~cat:"bench" ("bench." ^ name) f

let full_suite () =
  bench_span "table2" table2;
  bench_span "table3" table3;
  bench_span "table4" table4;
  bench_span "figure4" figure4;
  bench_span "figure5" figure5;
  bench_span "figure7" figure7;
  bench_span "scaling" scaling_sweep;
  bench_span "microbench" microbench;
  section "Summary";
  print_endline "All tables and figures regenerated; shape assertions passed:";
  print_endline "  C1  all 20 ULK figures plot from live state (Table 2)";
  print_endline "  C2  10/10 objectives synthesized by the NL frontend (Table 3)";
  print_endline "  C3  StackRot UAF + Dirty Pipe shared page reproduced (Figs 4/5/7)";
  print_endline "  C4  KGDB ~50x slower than local QEMU; ViewQL cost negligible (Table 4)"

let () =
  let args = Array.to_list Sys.argv in
  let rec get k = function
    | a :: v :: _ when a = k -> Some v
    | _ :: tl -> get k tl
    | [] -> None
  in
  Printf.printf
    "Visualinux reproduction benchmark - paper: Understanding the Linux Kernel, Visually (EuroSys'25)\n";
  (* observability is on by default so every bench run leaves a
     BENCH_<mode>.json metrics artifact; --obs off measures the bare
     (uninstrumented-cost) path, as make obs-smoke does *)
  let obs_on = Option.value (get "--obs" args) ~default:"on" = "on" in
  Obs.set_enabled obs_on;
  (* size the span ring to the mode: the full suite emits ~10^6 spans
     and would silently drop most of them at the default capacity (the
     smoke modes stay on the default so their overhead profile does not
     change) *)
  let chaos_arg = get "--chaos-rate" args in
  let fault_arg = get "--fault-rate" args in
  let repeat_arg = get "--repeat-plot" args in
  let sessions_arg = get "--sessions" args in
  let campaign_arg = get "--campaign" args in
  let crash_arg = get "--crash" args in
  let domains_arg = get "--domains" args in
  (* campaign mode gets the big ring too: flow-event export skips links
     whose endpoint spans were evicted, and the hedge-era spans must
     survive to the end of the timeline for the Perfetto arrows *)
  if
    campaign_arg <> None || crash_arg <> None
    || (chaos_arg = None && fault_arg = None && repeat_arg = None && sessions_arg = None
      && domains_arg = None)
  then Obs.set_ring_capacity (1 lsl 19);
  let mode =
    match (domains_arg, crash_arg, campaign_arg, sessions_arg, chaos_arg, fault_arg, repeat_arg)
    with
    | Some ds, _, _, _, _, _, _ ->
        let domains = max 1 (int_of_string ds) in
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0x9e3779b9
        in
        bench_span "par" (fun () -> par_bench ~domains ~seed);
        "par"
    | None, Some file, _, _, _, _, _ ->
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0x9e3779b9
        in
        bench_span "crash" (fun () -> crash_bench ~file ~seed);
        "crash"
    | None, None, Some file, _, _, _, _ ->
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0x9e3779b9
        in
        bench_span "campaign" (fun () -> campaign_bench ~file ~seed);
        "campaign"
    | None, None, None, Some ns, _, _, _ ->
        let n = max 2 (int_of_string ns) in
        let rate =
          Option.value (Option.map float_of_string (get "--fault-rate" args)) ~default:0.2
        in
        let rounds =
          Option.value (Option.map int_of_string (get "--rounds" args)) ~default:20
        in
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0x9e3779b9
        in
        bench_span "sessions" (fun () -> sessions_bench ~n ~rate ~rounds ~seed);
        "sessions"
    | None, None, None, None, Some rs, _, _ ->
        let rates = List.map float_of_string (String.split_on_char ',' rs) in
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0xC4405
        in
        bench_span "chaos" (fun () -> chaos ~rates ~seed);
        "chaos"
    | None, None, None, None, None, Some rs, _ ->
        let rates = List.map float_of_string (String.split_on_char ',' rs) in
        let profile =
          profile_of_name (Option.value (get "--profile" args) ~default:"kgdb_rpi400")
        in
        let deadline_ms = Option.map float_of_string (get "--deadline-ms" args) in
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0x9e3779b9
        in
        bench_span "degradation" (fun () ->
            degradation ~rates ~profile ~deadline_ms ~seed);
        "smoke"
    | None, None, None, None, None, None, Some it ->
        let iters = max 1 (int_of_string it) in
        let seed =
          Option.value (Option.map int_of_string (get "--seed" args)) ~default:0x9e3779b9
        in
        bench_span "repeat" (fun () -> repeat_plot ~iters ~seed);
        "repeat"
    | None, None, None, None, None, None, None ->
        full_suite ();
        "full"
  in
  if obs_on then begin
    let out = Printf.sprintf "BENCH_%s.json" mode in
    let oc = open_out out in
    output_string oc
      (Obs.metrics_json
         ~extra:
           [ ("mode", mode); ("argv", String.concat " " (List.tl args));
             ("spans_total", string_of_int (Obs.spans_total ())) ]
         ());
    close_out oc;
    Printf.printf "\nmetrics written to %s\n" out
  end;
  match get "--trace-out" args with
  | Some file ->
      let oc = open_out file in
      output_string oc (Obs.chrome_trace ());
      close_out oc;
      Printf.printf "Chrome trace written to %s (%d events, %d dropped)\n" file
        (Obs.event_count ()) (Obs.dropped ())
  | None -> ()
